package daemon

// The streaming-ingest endpoint. When Config.IngestModel is set the
// daemon owns an ingest.Ingester writing into the model directory:
//
//	POST /ingest
//	     Body: records in any of the /assign encodings — CSV (default),
//	     raw little-endian float64s (application/octet-stream), or one
//	     PMAS frame (application/x-pmafia-assign). The records are
//	     appended to the stream; a refit is triggered in the background
//	     once Config.RefitEvery records accumulate.
//	POST /ingest?refit=1
//	     After appending the body (which may be empty), refits
//	     synchronously and reports the generation written.
//
// Each refit writes the next generation of IngestModel atomically; the
// serving side's freshness checks then hot-swap it in, so /assign
// against the same name keeps answering — on the previous generation —
// while the refit runs, and picks the new one up when it lands.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pmafia/internal/dataset"
)

// ingestResponse is the POST /ingest reply.
type ingestResponse struct {
	// Appended is the number of records this request added.
	Appended int `json:"appended"`
	// Records and Pending mirror ingest.Stats after the append (and
	// refit, when one was requested).
	Records int `json:"records"`
	Pending int `json:"pending"`
	// Generation is the newest model generation written (0 before the
	// first refit completes).
	Generation uint64 `json:"generation"`
	// Refitted reports whether this request ran a synchronous refit.
	Refitted bool `json:"refitted,omitempty"`
}

func (d *Daemon) ingestHandler(w http.ResponseWriter, r *http.Request) {
	if d.ing == nil {
		http.Error(w, "streaming ingest is not enabled", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	st := statsOf(r.Context())
	st.model = d.cfg.IngestModel

	dims := d.ing.Dims()
	body := bufio.NewReader(http.MaxBytesReader(w, r.Body, d.cfg.MaxBody))
	appended := 0
	// An absent body is legal for a bare refit trigger; anything else
	// must decode to whole dims-dimensional records.
	if _, err := body.Peek(1); err != io.EOF {
		var vals []float64
		ct := r.Header.Get("Content-Type")
		switch {
		case strings.HasPrefix(ct, ContentTypeFrame):
			vals, err = decodeFrame(body, dims, d.cfg.MaxBody)
		case strings.HasPrefix(ct, "application/octet-stream"):
			var m *dataset.Matrix
			if m, err = binaryMatrix(body, dims); err == nil {
				vals = m.Values
			}
		default:
			var m *dataset.Matrix
			if m, _, err = dataset.ReadCSV(body); err == nil {
				if m.D != dims {
					err = fmt.Errorf("ingest stream wants %d-dim records, body has %d", dims, m.D)
				} else {
					vals = m.Values
				}
			}
		}
		if err == nil && len(vals) > 0 {
			appended = len(vals) / dims
			err = d.ing.Append(vals, appended)
		}
		if err != nil {
			code := http.StatusBadRequest
			if errors.As(err, new(*http.MaxBytesError)) || errors.Is(err, ErrFrameTooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			http.Error(w, err.Error(), code)
			return
		}
	}
	st.records = appended

	resp := ingestResponse{Appended: appended}
	if r.URL.Query().Get("refit") != "" {
		if _, err := d.ing.Refit(); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp.Refitted = true
	}
	stats := d.ing.Stats()
	resp.Records = stats.Records
	resp.Pending = stats.Pending
	resp.Generation = stats.Generation
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
