package daemon

// The framed binary /assign protocol. A frame is a 16-byte
// little-endian header followed by the record payload:
//
//	offset  size  field
//	0       4     magic "PMAS"
//	4       4     uint32 version (currently 1)
//	8       4     uint32 dims    (must equal the model's dimensionality)
//	12      4     uint32 records
//	16      8*dims*records  row-major little-endian float64 values
//
// Unlike the raw octet-stream path (which buffers the whole body and
// then converts), the header declares the payload size up front, so
// the decoder allocates the float64 output once and streams the body
// into it through a small fixed staging buffer — no intermediate
// whole-body copy — and a hostile length can be rejected before any
// payload is read. Every malformed input maps to a typed error below;
// the decoder never panics and never reads past the declared payload.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ContentTypeFrame is the Content-Type that selects the framed binary
// protocol on /assign.
const ContentTypeFrame = "application/x-pmafia-assign"

// frameMagic opens every frame; frameVersion is the only version this
// decoder speaks; frameHeaderSize is the fixed header length.
const (
	frameMagic      = "PMAS"
	frameVersion    = 1
	frameHeaderSize = 16
)

// Typed frame-decode errors. They map to 400 (client error) in the
// handler, except ErrFrameTooLarge which maps to 413.
var (
	ErrFrameMagic     = errors.New("assign frame: bad magic (want \"PMAS\")")
	ErrFrameVersion   = errors.New("assign frame: unsupported version")
	ErrFrameDims      = errors.New("assign frame: dims do not match the model")
	ErrFrameTruncated = errors.New("assign frame: truncated body")
	ErrFrameTooLarge  = errors.New("assign frame: declared payload exceeds the body cap")
	ErrFrameTrailing  = errors.New("assign frame: trailing bytes after the declared payload")
)

// EncodeFrame builds a frame for dims-dimensional records. vals is the
// row-major value matrix; len(vals) must be a multiple of dims.
// Clients (and the bench load harness) use it to speak the protocol.
func EncodeFrame(dims int, vals []float64) ([]byte, error) {
	if dims < 1 {
		return nil, fmt.Errorf("assign frame: dims %d < 1", dims)
	}
	if len(vals)%dims != 0 {
		return nil, fmt.Errorf("assign frame: %d values do not divide into %d-dim records", len(vals), dims)
	}
	buf := make([]byte, frameHeaderSize+8*len(vals))
	copy(buf, frameMagic)
	binary.LittleEndian.PutUint32(buf[4:], frameVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(dims))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(vals)/dims))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[frameHeaderSize+8*i:], math.Float64bits(v))
	}
	return buf, nil
}

// decodeFrame reads one frame from r and returns its values, validated
// against the model dimensionality. maxBytes is the request body cap:
// a frame whose declared payload (header included) would exceed it is
// rejected with ErrFrameTooLarge before the payload is read, so a
// hostile record count costs the server nothing. The reader is
// expected to hold exactly one frame; any bytes after the declared
// payload are ErrFrameTrailing.
func decodeFrame(r io.Reader, wantDims int, maxBytes int64) ([]float64, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrFrameTruncated
		}
		return nil, err
	}
	if string(hdr[:4]) != frameMagic {
		return nil, ErrFrameMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != frameVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrFrameVersion, v, frameVersion)
	}
	dims := binary.LittleEndian.Uint32(hdr[8:])
	if wantDims < 1 || dims != uint32(wantDims) {
		return nil, fmt.Errorf("%w: frame has %d, model wants %d", ErrFrameDims, dims, wantDims)
	}
	records := binary.LittleEndian.Uint32(hdr[12:])
	// Division, not multiplication: records*dims*8 can overflow int64
	// for hostile counts, the quotient bound cannot.
	if maxBytes > 0 && int64(records) > (maxBytes-frameHeaderSize)/(int64(dims)*8) {
		return nil, fmt.Errorf("%w: %d records of %d dims", ErrFrameTooLarge, records, dims)
	}
	vals := make([]float64, int64(records)*int64(dims))
	var stage [8192]byte
	for off := 0; off < len(vals); {
		want := (len(vals) - off) * 8
		if want > len(stage) {
			want = len(stage)
		}
		if _, err := io.ReadFull(r, stage[:want]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, ErrFrameTruncated
			}
			return nil, err
		}
		for i := 0; i < want; i += 8 {
			vals[off] = math.Float64frombits(binary.LittleEndian.Uint64(stage[i:]))
			off++
		}
	}
	if n, err := r.Read(stage[:1]); n != 0 {
		return nil, ErrFrameTrailing
	} else if err != nil && err != io.EOF {
		return nil, err
	}
	return vals, nil
}
