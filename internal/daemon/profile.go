package daemon

// Continuous profiling: with Config.ProfileDir set, a background
// goroutine periodically captures a CPU profile (ProfileCPU long) and
// a heap profile into the directory, pruning old captures so at most
// ProfileKeep files per kind stay on disk. /debug/profiles serves a
// JSON index of what is retained; /debug/profiles/{name} serves the
// raw pprof bytes. Unlike the on-demand /debug/pprof endpoints, this
// keeps a rolling window of "what was the daemon doing" even for
// incidents noticed after the fact.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"pmafia/internal/obs"
)

type profiler struct {
	dir      string
	interval time.Duration // sleep between capture cycles
	cpuDur   time.Duration // length of each CPU capture
	keep     int           // files retained per kind
	rec      *obs.Recorder

	seq      int64
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newProfiler(dir string, interval, cpuDur time.Duration, keep int, rec *obs.Recorder) (*profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := &profiler{
		dir:      dir,
		interval: interval,
		cpuDur:   cpuDur,
		keep:     keep,
		rec:      rec,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p, nil
}

// close stops the capture loop and waits for it to exit. A CPU
// capture in progress is cut short rather than waited out. Safe to
// call more than once (Shutdown may run after a failed Serve).
func (p *profiler) close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (p *profiler) loop() {
	defer close(p.done)
	t := time.NewTimer(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		p.captureCPU()
		p.captureHeap()
		p.prune()
		t.Reset(p.interval)
	}
}

// name builds a capture filename: kind, a sortable UTC stamp, and a
// process-lifetime sequence number to break same-millisecond ties.
func (p *profiler) name(kind string) string {
	p.seq++ // loop goroutine only; no lock needed
	return fmt.Sprintf("%s-%s-%06d.pprof", kind,
		time.Now().UTC().Format("20060102T150405.000"), p.seq)
}

func (p *profiler) captureCPU() {
	f, err := os.Create(filepath.Join(p.dir, p.name("cpu")))
	if err != nil {
		p.rec.Add(0, obs.CtrProfileErrors, 1)
		return
	}
	// StartCPUProfile fails if another CPU profile is running (e.g. a
	// client hitting /debug/pprof/profile); count it and retry next
	// cycle rather than fight over the profiler.
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		p.rec.Add(0, obs.CtrProfileErrors, 1)
		return
	}
	select {
	case <-p.stop:
	case <-time.After(p.cpuDur):
	}
	pprof.StopCPUProfile()
	f.Close()
	p.rec.Add(0, obs.CtrProfileCPU, 1)
}

func (p *profiler) captureHeap() {
	f, err := os.Create(filepath.Join(p.dir, p.name("heap")))
	if err != nil {
		p.rec.Add(0, obs.CtrProfileErrors, 1)
		return
	}
	err = pprof.Lookup("heap").WriteTo(f, 0)
	f.Close()
	if err != nil {
		os.Remove(f.Name())
		p.rec.Add(0, obs.CtrProfileErrors, 1)
		return
	}
	p.rec.Add(0, obs.CtrProfileHeap, 1)
}

// prune bounds the on-disk retention: for each kind, only the keep
// newest captures survive.
func (p *profiler) prune() {
	for _, kind := range []string{"cpu", "heap"} {
		names := p.captures(kind)
		for i := p.keep; i < len(names); i++ {
			if os.Remove(filepath.Join(p.dir, names[i])) == nil {
				p.rec.Add(0, obs.CtrProfilePruned, 1)
			}
		}
	}
}

// captures lists the retained capture files of one kind, newest
// first. Filenames embed a fixed-width UTC stamp plus a sequence
// number, so reverse-lexicographic order is capture order.
func (p *profiler) captures(kind string) []string {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), kind+"-") && strings.HasSuffix(e.Name(), ".pprof") {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

// profileInfo is one row of the /debug/profiles index.
type profileInfo struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Bytes int64  `json:"bytes"`
	Time  string `json:"time"`
}

// profileName is the only shape /debug/profiles/{name} will serve —
// a capture filename, never a path.
var profileName = regexp.MustCompile(`^(cpu|heap)-[0-9T.]+-[0-9]+\.pprof$`)

// debugProfiles serves the continuous-profiling index (JSON) and the
// raw pprof files under it.
func (d *Daemon) debugProfiles(w http.ResponseWriter, r *http.Request) {
	if d.prof == nil {
		http.Error(w, "profiling disabled (start with -profile-dir)", http.StatusNotFound)
		return
	}
	name := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/profiles"), "/")
	if name == "" {
		out := []profileInfo{}
		for _, kind := range []string{"cpu", "heap"} {
			for _, n := range d.prof.captures(kind) {
				info := profileInfo{Name: n, Kind: kind}
				if fi, err := os.Stat(filepath.Join(d.prof.dir, n)); err == nil {
					info.Bytes = fi.Size()
					info.Time = fi.ModTime().UTC().Format(time.RFC3339)
				}
				out = append(out, info)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(out)
		return
	}
	if !profileName.MatchString(name) {
		http.Error(w, "bad profile name", http.StatusBadRequest)
		return
	}
	raw, err := os.ReadFile(filepath.Join(d.prof.dir, name))
	if err != nil {
		http.Error(w, "no such profile", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}
