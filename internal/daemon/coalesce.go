package daemon

// Request coalescing for the framed /assign path: concurrent small
// bodies against the same model are appended to one accumulation
// buffer and labeled by a single batch-kernel invocation, so a swarm
// of tiny requests pays one kernel ramp-up instead of one each. A
// batch flushes when it reaches the configured chunk size or when its
// flush window expires, whichever comes first — no request ever waits
// past the window. Waiters get their labels copied out per request, so
// a late reader can never observe a buffer reused by the next batch.

import (
	"context"
	"sync"
	"time"

	"pmafia/internal/obs"
)

// coalescer batches framed /assign requests per compiled model
// generation. Keying on the *compiled (not the model handle) is what
// keeps batches coherent across hot swaps: a swap changes the pointer,
// so requests that loaded the old generation accumulate apart from
// requests that loaded the new one, and one batch is only ever labeled
// by the index every one of its waiters resolved.
type coalescer struct {
	rec    *obs.Recorder
	traces *obs.TraceRing // nil when tracing is off
	window time.Duration  // max time a request may wait for co-riders
	flushN int            // records that trigger an immediate flush

	mu       sync.Mutex
	pending  map[*compiled]*coBatch
	draining bool // drain ran: new submissions run solo, immediately
}

// coBatch is one in-progress accumulation for a model generation. It
// leaves c.pending exactly once — detached by the request that fills
// it, by its window timer, or by the shutdown drain — and is run by
// whoever detached it, so a batch can never be labeled twice.
type coBatch struct {
	cx      *compiled
	vals    []float64 // concatenated request payloads, row-major
	n       int       // records accumulated
	waiters []*coWaiter
	timer   *time.Timer // nil for solo batches built while draining
}

// coWaiter is one request's slot in a batch: its record range in the
// accumulation buffer and the channel its labels arrive on. traceID
// carries the request's trace identity into the batch; the kernel
// window (kernelID, kStart, kEnd) travels the other way — run fills
// it before closing done, and the waiter annotates its own trace
// after waking, so no goroutine ever mutates another request's trace.
type coWaiter struct {
	off, n   int
	traceID  string
	enqueued time.Time
	done     chan struct{}
	labels   []int32
	err      error

	kernelID     int64
	kStart, kEnd time.Time
}

func newCoalescer(rec *obs.Recorder, traces *obs.TraceRing, window time.Duration, flushN int) *coalescer {
	return &coalescer{
		rec:     rec,
		traces:  traces,
		window:  window,
		flushN:  flushN,
		pending: make(map[*compiled]*coBatch),
	}
}

// submit enqueues one request's records and blocks until its batch is
// labeled (or ctx ends; the batch still completes without the caller).
// vals must be a whole number of cx's records and must not be mutated
// after the call — the coalescer owns it from here.
func (c *coalescer) submit(ctx context.Context, cx *compiled, vals []float64) ([]int32, error) {
	d := cx.ix.Dims()
	st := statsOf(ctx)
	w := &coWaiter{n: len(vals) / d, enqueued: time.Now(), done: make(chan struct{})}
	if st.tr != nil {
		w.traceID = st.tr.ID
	}
	c.mu.Lock()
	if c.draining {
		// Shutdown already flushed the pending map; anything arriving
		// now runs solo so no waiter is ever parked on a batch nothing
		// will flush.
		b := &coBatch{cx: cx, vals: vals, n: w.n, waiters: []*coWaiter{w}}
		c.mu.Unlock()
		c.rec.Add(0, obs.CtrAssignCoalesceReqs, 1)
		c.run(b)
	} else {
		b := c.pending[cx]
		if b == nil {
			b = &coBatch{cx: cx}
			c.pending[cx] = b
			b.timer = time.AfterFunc(c.window, func() { c.flushExpired(cx, b) })
		}
		w.off = b.n
		b.vals = append(b.vals, vals...)
		b.n += w.n
		b.waiters = append(b.waiters, w)
		full := b.n >= c.flushN
		if full {
			c.detachLocked(cx, b)
		}
		c.mu.Unlock()
		c.rec.Add(0, obs.CtrAssignCoalesceReqs, 1)
		if full {
			c.run(b)
		}
	}
	select {
	case <-w.done:
		if st.tr != nil && w.kernelID != 0 {
			// The kernel window came back with the labels: record this
			// request's share of the batch on its own trace.
			st.stage("coalesce-wait", w.enqueued, w.kStart)
			st.stage("kernel", w.kStart, w.kEnd)
			st.tr.KernelID = w.kernelID
		}
		return w.labels, w.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flushExpired is the window-timer path: run the batch unless the
// fill path (or the shutdown drain) already detached it.
func (c *coalescer) flushExpired(cx *compiled, b *coBatch) {
	c.mu.Lock()
	detached := c.pending[cx] == b
	if detached {
		c.detachLocked(cx, b)
	}
	c.mu.Unlock()
	if detached {
		c.run(b)
	}
}

// detachLocked removes b from the pending map (callers hold c.mu and
// have verified identity). Stopping the timer is best-effort: a timer
// that already fired finds the batch gone and does nothing.
func (c *coalescer) detachLocked(cx *compiled, b *coBatch) {
	delete(c.pending, cx)
	b.timer.Stop()
}

// drain detaches every pending batch and runs them synchronously,
// then leaves the coalescer in pass-through mode. Shutdown calls it
// before the HTTP server starts waiting on in-flight requests, so a
// waiter parked on a half-full batch is flushed rather than abandoned
// holding the server open, and a submission racing the drain runs solo
// instead of landing in a map nothing will ever flush again.
func (c *coalescer) drain() {
	c.mu.Lock()
	c.draining = true
	batches := make([]*coBatch, 0, len(c.pending))
	for cx, b := range c.pending {
		c.detachLocked(cx, b)
		batches = append(batches, b)
	}
	c.mu.Unlock()
	for _, b := range batches {
		c.run(b)
	}
}

// run labels a detached batch with one kernel invocation and fans the
// labels back out to the waiters. Queue time — enqueue to kernel
// start — lands in the same histogram as the in-flight-slot wait.
func (c *coalescer) run(b *coBatch) {
	start := time.Now()
	for _, w := range b.waiters {
		c.rec.Observe(0, obs.HistAssignQueueSeconds, start.Sub(w.enqueued).Seconds())
	}
	c.rec.Add(0, obs.CtrAssignCoalesceFlushes, 1)
	c.rec.Observe(0, obs.HistAssignCoalesceRecords, float64(b.n))
	labels := make([]int32, b.n)
	err := b.cx.ix.AssignChunk(b.vals, labels, b.cx.ix.Scratch())
	end := time.Now()
	var kernelID int64
	if c.traces != nil {
		var ids []string
		for _, w := range b.waiters {
			if w.traceID != "" {
				ids = append(ids, w.traceID)
			}
		}
		if len(ids) > 0 {
			kernelID = c.traces.Kernel(b.cx.name, b.n, ids, start, end)
		}
	}
	for _, w := range b.waiters {
		w.kernelID, w.kStart, w.kEnd = kernelID, start, end
		if err != nil {
			w.err = err
		} else {
			w.labels = append([]int32(nil), labels[w.off:w.off+w.n]...)
		}
		close(w.done)
	}
}
