package daemon

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestSlowRingProperty: after any offer sequence, snapshot() is
// exactly the cap slowest entries seen so far, sorted slowest first.
func TestSlowRingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cap := 1 + rng.Intn(8)
		n := rng.Intn(40)
		s := newSlowRing(cap)
		var all []slowEntry
		for i := 0; i < n; i++ {
			e := slowEntry{ID: fmt.Sprintf("r%d", i), Seconds: rng.Float64()}
			all = append(all, e)
			s.offer(e)
		}
		want := append([]slowEntry(nil), all...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Seconds > want[j].Seconds })
		if len(want) > cap {
			want = want[:cap]
		}
		got := s.snapshot()
		if len(got) != len(want) {
			t.Fatalf("trial %d (cap %d, n %d): snapshot has %d entries, want %d",
				trial, cap, n, len(got), len(want))
		}
		for i := range got {
			if got[i].Seconds != want[i].Seconds {
				t.Fatalf("trial %d (cap %d): entry %d = %.6f, want %.6f (true top-%d, sorted)",
					trial, cap, i, got[i].Seconds, want[i].Seconds, cap)
			}
		}
	}
}

// TestSlowRingConcurrent hammers offer and snapshot from many
// goroutines; run under -race this is the data-race regression test,
// and afterwards the ring must hold the true top-cap of everything
// offered.
func TestSlowRingConcurrent(t *testing.T) {
	const (
		cap        = 8
		writers    = 8
		perWriter  = 200
		readers    = 4
		readRounds = 100
	)
	s := newSlowRing(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				s.offer(slowEntry{
					ID:      fmt.Sprintf("w%d-%d", w, i),
					Seconds: rng.Float64(),
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readRounds; i++ {
				snap := s.snapshot()
				if len(snap) > cap {
					t.Errorf("snapshot exceeded cap: %d > %d", len(snap), cap)
					return
				}
				for j := 1; j < len(snap); j++ {
					if snap[j].Seconds > snap[j-1].Seconds {
						t.Error("snapshot not sorted slowest first")
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic writers: recompute the true top-cap offline.
	var all []float64
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWriter; i++ {
			all = append(all, rng.Float64())
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	got := s.snapshot()
	if len(got) != cap {
		t.Fatalf("final snapshot has %d entries, want %d", len(got), cap)
	}
	for i, e := range got {
		if e.Seconds != all[i] {
			t.Errorf("final entry %d = %.9f, want %.9f", i, e.Seconds, all[i])
		}
	}
}
