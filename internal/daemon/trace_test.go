package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pmafia/internal/dataset"
	"pmafia/internal/obs"
)

// get fetches a URL and returns the response plus body.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// chromeDoc is the subset of the Chrome trace_event schema the tests
// assert on.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		ID   int64          `json:"id"`
		Bp   string         `json:"bp"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestServeTraceEndToEnd drives coalesced framed traffic at a fully
// sampled daemon and asserts the /debug/trace export end to end:
// valid Chrome trace_event JSON, every coalesced kernel span
// flow-linked to at least one request span, stage spans summing to
// within the route-histogram observation, per-ID lookup, and the
// trace-backed slow ring.
func TestServeTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 1)
	d, base := startDaemon(t, Config{
		ModelDir:       dir,
		TraceSample:    1,
		CoalesceWindow: 2 * time.Millisecond,
		CoalesceMax:    1 << 20,
		Inflight:       32,
	})
	defer d.Shutdown(context.Background())

	dims := m.D
	const clients, reqs = 8, 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				lo := (c*reqs + i) * 8 % (m.NumRecords() - 8)
				body, err := EncodeFrame(dims, m.Values[lo*dims:(lo+8)*dims])
				if err != nil {
					t.Error(err)
					return
				}
				resp, raw := postAssign(t, base, "a.pmfm", ContentTypeFrame, body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d: %s", resp.StatusCode, raw)
				}
			}
		}(c)
	}
	wg.Wait()

	resp, raw := get(t, base+"/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", resp.StatusCode)
	}
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}

	// Every coalesced kernel span must be flow-linked to >=1 request
	// span: each kernel-cat "X" event's kernel_id appears in at least
	// one "s"/"f" flow pair, and every "s" has its "f".
	kernelIDs := map[float64]bool{}
	flowKernels := map[float64]bool{}
	starts, finishes := map[int64]bool{}, map[int64]bool{}
	requests := 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "kernel":
			kernelIDs[ev.Args["kernel_id"].(float64)] = true
		case ev.Ph == "X" && ev.Cat == "request":
			requests++
		case ev.Ph == "s":
			starts[ev.ID] = true
			flowKernels[ev.Args["kernel_id"].(float64)] = true
		case ev.Ph == "f":
			finishes[ev.ID] = true
		}
	}
	if requests != clients*reqs {
		t.Errorf("exported %d request spans, want %d (sample rate 1)", requests, clients*reqs)
	}
	if len(kernelIDs) == 0 {
		t.Fatal("no coalesced kernel spans in the export")
	}
	for id := range kernelIDs {
		if !flowKernels[id] {
			t.Errorf("kernel span %v has no flow link to a request span", id)
		}
	}
	for id := range starts {
		if !finishes[id] {
			t.Errorf("flow %d has a start but no finish", id)
		}
	}

	// Stage spans of every retained trace sum to within the request's
	// root duration, which the route histogram observed: no trace can
	// outlast the histogram's exact max.
	traces, _ := d.traces.Snapshot()
	hist := d.rec.Histogram(obs.HistRouteSeconds("assign"))
	if hist == nil {
		t.Fatal("no assign route histogram")
	}
	checked := 0
	for _, tr := range traces {
		if tr.Route != "assign" {
			continue
		}
		checked++
		if sum, dur := tr.StageSum(), tr.Duration(); sum > dur+1e-6 {
			t.Errorf("trace %s: stage sum %.6fs exceeds duration %.6fs", tr.ID, sum, dur)
		}
		if dur := tr.Duration(); dur > hist.Max()+1e-6 {
			t.Errorf("trace %s: duration %.6fs exceeds histogram max %.6fs", tr.ID, dur, hist.Max())
		}
		if tr.KernelID == 0 {
			t.Errorf("trace %s was not linked to a kernel span", tr.ID)
		}
		stages := map[string]bool{}
		for _, s := range tr.Spans {
			stages[s.Stage] = true
		}
		for _, want := range []string{"queue", "frame-decode", "coalesce-wait", "kernel", "encode"} {
			if !stages[want] {
				t.Errorf("trace %s missing stage %q (has %v)", tr.ID, want, tr.Spans)
			}
		}
	}
	if checked != clients*reqs {
		t.Errorf("checked %d assign traces, want %d", checked, clients*reqs)
	}

	// Per-ID lookup round-trips through HTTP.
	id := traces[0].ID
	resp, raw = get(t, base+"/debug/trace/"+id)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(id)) {
		t.Errorf("/debug/trace/{id} status %d", resp.StatusCode)
	}
	if resp, _ := get(t, base+"/debug/trace/doesnotexist"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id served %d, want 404", resp.StatusCode)
	}

	// The slow ring is trace-backed: every /debug/slow entry names a
	// retained, resolvable trace.
	_, raw = get(t, base+"/debug/slow")
	var slow []slowEntry
	if err := json.Unmarshal(raw, &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow) == 0 {
		t.Fatal("empty slow ring after traffic")
	}
	for _, e := range slow {
		if e.TraceID == "" {
			t.Errorf("slow entry %s has no trace id", e.ID)
		}
		if d.traces.Lookup(e.ID) == nil {
			t.Errorf("slow entry %s: trace not retained", e.ID)
		}
	}
}

// TestTraceTailRetention drives mixed traffic at -trace-sample 0.01
// and verifies the tail-based retention contract: 100% of non-2xx
// requests and 100% of the slowest decile are retained, while head
// sampling drops the bulk of ordinary traffic from the sample class.
func TestTraceTailRetention(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 2)
	var logBuf syncBuffer
	d, base := startDaemon(t, Config{
		ModelDir:    dir,
		TraceSample: 0.01,
		TraceRing:   64,
		AccessLog:   &logBuf,
	})
	defer d.Shutdown(context.Background())

	const total, errEvery = 150, 15
	body := csvBody(&dataset.Matrix{D: m.D, Values: m.Values[:64*m.D]})
	for i := 0; i < total; i++ {
		model := "a.pmfm"
		if i%errEvery == errEvery-1 {
			model = "missing.pmfm" // 404: must always be retained
		}
		resp, _ := postAssign(t, base, model, "text/csv", body)
		if model == "a.pmfm" && resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	if err := d.alog.flush(); err != nil {
		t.Fatal(err)
	}
	var recs []accessRecord
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var rec accessRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Route == "assign" {
			recs = append(recs, rec)
		}
	}
	if len(recs) != total {
		t.Fatalf("access log has %d assign lines, want %d", len(recs), total)
	}

	// 100% of non-2xx requests are retained.
	errs := 0
	for _, rec := range recs {
		if rec.Status == http.StatusOK {
			continue
		}
		errs++
		if d.traces.Lookup(rec.ID) == nil {
			t.Errorf("non-2xx request %s not retained", rec.ID)
		}
	}
	if errs != total/errEvery {
		t.Fatalf("saw %d errors, want %d", errs, total/errEvery)
	}

	// 100% of the slowest decile is retained: the ring's slow class
	// keeps the top-64 slowest, a superset of the top-15 of 150.
	byDur := append([]accessRecord(nil), recs...)
	for i := 1; i < len(byDur); i++ { // insertion sort, slowest first
		for j := i; j > 0 && byDur[j].DurationSeconds > byDur[j-1].DurationSeconds; j-- {
			byDur[j], byDur[j-1] = byDur[j-1], byDur[j]
		}
	}
	for _, rec := range byDur[:total/10] {
		if d.traces.Lookup(rec.ID) == nil {
			t.Errorf("slowest-decile request %s (%.6fs) not retained",
				rec.ID, rec.DurationSeconds)
		}
	}

	// Head sampling fired (request 1, 101, ...) but did not keep
	// everything: retention stays well under the request count.
	met := d.rec.Metrics()
	if met.Counters[obs.CtrTraceSampled] < 1 {
		t.Error("no request was head-sampled at stride 100")
	}
	if met.Counters[obs.CtrTraceRequests] < total {
		t.Errorf("trace.requests = %d, want >= %d", met.Counters[obs.CtrTraceRequests], total)
	}
	traces, _ := d.traces.Snapshot()
	if len(traces) >= total {
		t.Errorf("retained %d of %d traces — sampling kept everything", len(traces), total)
	}
}

// TestTraceparentPropagation: an inbound W3C traceparent's trace-id is
// adopted and echoed outbound with the daemon's own span-id; malformed
// headers are ignored and a fresh trace-id minted.
func TestTraceparentPropagation(t *testing.T) {
	dir := t.TempDir()
	d, base := startDaemon(t, Config{ModelDir: dir, TraceSample: 1})
	defer d.Shutdown(context.Background())

	inbound := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := resp.Header.Get("traceparent")
	parts := strings.Split(out, "-")
	if len(parts) != 4 || parts[1] != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("outbound traceparent %q did not adopt the inbound trace-id", out)
	}
	if parts[2] == "00f067aa0ba902b7" {
		t.Error("daemon reused the caller's span-id instead of minting its own")
	}
	// The ring is keyed by the per-request ID; the shared W3C trace-id
	// rides along as an attribute (it is common to every request of a
	// distributed trace, so it cannot be the key).
	tr := d.traces.Lookup(resp.Header.Get("X-Request-ID"))
	if tr == nil {
		t.Fatal("request's trace not retained at sample rate 1")
	}
	if tr.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Errorf("retained trace carries trace-id %q, want the adopted inbound one", tr.TraceID)
	}
	if d.traces.Lookup("0123456789abcdef0123456789abcdef") != nil {
		t.Error("ring keyed by the shared W3C trace-id instead of the per-request ID")
	}

	// Two requests sharing one distributed trace-id must both be
	// retained — keying by trace-id would make them shadow each other.
	req2, _ := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	req2.Header.Set("traceparent", inbound)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	id2 := resp2.Header.Get("X-Request-ID")
	if id2 == resp.Header.Get("X-Request-ID") {
		t.Fatal("two requests shared an X-Request-ID")
	}
	if d.traces.Lookup(id2) == nil {
		t.Error("second request of the same distributed trace was not retained")
	}
	traces, _ := d.traces.Snapshot()
	withTid := 0
	for _, tr := range traces {
		if tr.TraceID == "0123456789abcdef0123456789abcdef" {
			withTid++
		}
	}
	if withTid != 2 {
		t.Errorf("snapshot holds %d traces with the shared trace-id, want 2", withTid)
	}

	for _, bad := range []string{
		"", "01-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
		"00-zzzz-00f067aa0ba902b7-01",
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",
		"00-0123456789ABCDEF0123456789ABCDEF-00f067aa0ba902b7-01",
	} {
		if got := parseTraceparent(bad); got != "" {
			t.Errorf("parseTraceparent(%q) = %q, want rejection", bad, got)
		}
	}
}

// TestMetricsExemplars scrapes /metrics both ways: the classic 0.0.4
// text exposition must be exemplar-free (exemplars are illegal there),
// while a scrape negotiating application/openmetrics-text gets the
// exemplar suffix on the latency-histogram bucket lines plus the
// # EOF trailer; the trace IDs it finds must resolve at
// /debug/trace/{id}.
func TestMetricsExemplars(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 3)
	d, base := startDaemon(t, Config{ModelDir: dir, TraceSample: 1})
	defer d.Shutdown(context.Background())

	body := csvBody(&dataset.Matrix{D: m.D, Values: m.Values[:32*m.D]})
	for i := 0; i < 3; i++ {
		if resp, raw := postAssign(t, base, "a.pmfm", "text/csv", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
	}

	// The classic 0.0.4 text exposition must carry no exemplars — its
	// parser reads the ` # ...` tail as a malformed timestamp and fails
	// the whole scrape — and no OpenMetrics trailer.
	resp, raw := get(t, base+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("plain scrape content type %q", ct)
	}
	if bytes.Contains(raw, []byte(" # ")) {
		t.Error("exemplar leaked into the 0.0.4 text exposition")
	}
	if bytes.Contains(raw, []byte("# EOF")) {
		t.Error("# EOF trailer leaked into the 0.0.4 text exposition")
	}

	// Negotiating OpenMetrics via Accept yields the exemplar-bearing
	// exposition, closed by the mandatory # EOF.
	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	omResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(omResp.Body)
	omResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := omResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics scrape content type %q", ct)
	}
	if !strings.HasSuffix(strings.TrimSpace(string(raw)), "# EOF") {
		t.Error("OpenMetrics exposition missing the # EOF trailer")
	}

	type exemplar struct {
		family, traceID string
		value, ts       float64
	}
	var found []exemplar
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		// OpenMetrics exemplar syntax:
		//   name_bucket{...} <count> # {trace_id="..."} <value> <ts>
		base, ex, ok := strings.Cut(line, " # ")
		if !ok {
			continue
		}
		if !strings.Contains(base, "_bucket{") {
			t.Errorf("exemplar on a non-bucket line: %s", line)
			continue
		}
		var traceID string
		var value, ts float64
		if _, err := fmt.Sscanf(ex, "{trace_id=%q} %g %g", &traceID, &value, &ts); err != nil {
			t.Errorf("unparseable exemplar %q: %v", ex, err)
			continue
		}
		if traceID == "" || value <= 0 || ts <= 0 {
			t.Errorf("degenerate exemplar %q", ex)
		}
		found = append(found, exemplar{family: base[:strings.Index(base, "_bucket{")], traceID: traceID, value: value, ts: ts})
	}
	families := map[string]bool{}
	for _, ex := range found {
		families[ex.family] = true
		if resp, _ := get(t, base+"/debug/trace/"+ex.traceID); resp.StatusCode != http.StatusOK {
			t.Errorf("exemplar trace %s not resolvable: status %d", ex.traceID, resp.StatusCode)
		}
	}
	for _, want := range []string{"pmafia_http_request_seconds", "pmafia_model_assign_seconds"} {
		if !families[want] {
			t.Errorf("no exemplar on family %s (found %v)", want, families)
		}
	}
}

// TestInstrumentRecoversPanic: a panicking handler yields a 500 with
// the metrics, access-log, slow-ring, and trace invariants intact.
func TestInstrumentRecoversPanic(t *testing.T) {
	dir := t.TempDir()
	var logBuf syncBuffer
	d, _ := startDaemon(t, Config{ModelDir: dir, AccessLog: &logBuf, TraceSample: 1})
	defer d.Shutdown(context.Background())

	h := d.instrument("assign", func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodPost, "/assign", nil))

	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rr.Code)
	}
	if rr.Header().Get("X-Request-ID") == "" {
		t.Error("panicked response lost its X-Request-ID")
	}
	met := d.rec.Metrics()
	if met.Counters[obs.CtrHTTPStatus("assign", 500)] != 1 {
		t.Error("panic did not land in the status counters")
	}
	if h := d.rec.Histogram(obs.HistRouteSeconds("assign")); h == nil || h.Count() != 1 {
		t.Error("panic did not land in the route histogram")
	}
	if err := d.alog.flush(); err != nil {
		t.Fatal(err)
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(logBuf.String()), &rec); err != nil {
		t.Fatalf("no access-log line after panic: %v", err)
	}
	if rec.Status != 500 || !strings.Contains(rec.Panic, "boom") {
		t.Errorf("access record %+v does not carry the panic", rec)
	}
	if !strings.Contains(rec.PanicStack, "goroutine") {
		t.Errorf("access record carries no panic stack trace: %q", rec.PanicStack)
	}
	if entries := d.slow.snapshot(); len(entries) != 1 || entries[0].Status != 500 {
		t.Error("panic did not compete for the slow ring")
	}
	if tr := d.traces.Lookup(rec.ID); tr == nil || tr.Status != 500 {
		t.Error("panicked request's trace not retained as an error")
	}

	// A panic after the handler already wrote keeps the wire status.
	rr = httptest.NewRecorder()
	d.instrument("assign", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late")
	})(rr, httptest.NewRequest(http.MethodPost, "/assign", nil))
	if rr.Code != http.StatusAccepted {
		t.Errorf("late panic rewrote an already-sent status to %d", rr.Code)
	}
}

// TestInstrumentAbortHandlerPassthrough: http.ErrAbortHandler is
// net/http's abort-the-connection sentinel; the middleware must let it
// keep propagating (after recording the request) instead of converting
// it into a 500.
func TestInstrumentAbortHandlerPassthrough(t *testing.T) {
	dir := t.TempDir()
	var logBuf syncBuffer
	d, _ := startDaemon(t, Config{ModelDir: dir, AccessLog: &logBuf})
	defer d.Shutdown(context.Background())

	h := d.instrument("assign", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	recovered := func() (v any) {
		defer func() { v = recover() }()
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/assign", nil))
		return nil
	}()
	if recovered != http.ErrAbortHandler {
		t.Fatalf("middleware swallowed http.ErrAbortHandler (recovered %v)", recovered)
	}

	// The request was still recorded before the sentinel continued up.
	if h := d.rec.Histogram(obs.HistRouteSeconds("assign")); h == nil || h.Count() != 1 {
		t.Error("aborted request missing from the route histogram")
	}
	if err := d.alog.flush(); err != nil {
		t.Fatal(err)
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(logBuf.String()), &rec); err != nil {
		t.Fatalf("no access-log line for the aborted request: %v", err)
	}
	if rec.Panic == "" {
		t.Error("access record does not mark the aborted request")
	}
}

// TestRequestIDSanitized: client-supplied X-Request-ID values with
// control characters, spaces, or non-ASCII bytes are rejected (a
// fresh ID is generated); clean ones are echoed.
func TestRequestIDSanitized(t *testing.T) {
	dir := t.TempDir()
	d, _ := startDaemon(t, Config{ModelDir: dir})
	defer d.Shutdown(context.Background())

	// Go's HTTP client refuses to even send control characters, so
	// exercise the middleware directly with handcrafted headers.
	h := d.instrument("healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	do := func(id string) string {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		req.Header["X-Request-Id"] = []string{id}
		rr := httptest.NewRecorder()
		h(rr, req)
		return rr.Header().Get("X-Request-ID")
	}

	if got := do("good-id_123/v2"); got != "good-id_123/v2" {
		t.Errorf("clean ID %q not echoed (got %q)", "good-id_123/v2", got)
	}
	for _, bad := range []string{
		"has space", "ctrl\x01char", "high\xffbyte", "tab\there",
		strings.Repeat("x", 129),
	} {
		if got := do(bad); got == bad || got == "" {
			t.Errorf("unsanitized ID %q was echoed", bad)
		}
	}
	if validRequestID("") || !validRequestID(strings.Repeat("x", 128)) {
		t.Error("validRequestID length edge cases wrong")
	}
}

// TestAccessLogBreakdown: access-log lines carry the per-stage
// breakdown, and the stages are consistent with the total.
func TestAccessLogBreakdown(t *testing.T) {
	dir := t.TempDir()
	_, m := fitModel(t, dir, "a.pmfm", 4)
	var logBuf syncBuffer
	d, base := startDaemon(t, Config{ModelDir: dir, AccessLog: &logBuf})
	defer d.Shutdown(context.Background())

	body := csvBody(m)
	if resp, raw := postAssign(t, base, "a.pmfm", "text/csv", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if err := d.alog.flush(); err != nil {
		t.Fatal(err)
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(logBuf.String()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.DecodeSeconds <= 0 || rec.AssignSeconds <= 0 || rec.EncodeSeconds <= 0 {
		t.Errorf("breakdown missing from access record: %+v", rec)
	}
	sum := rec.QueueSeconds + rec.DecodeSeconds + rec.AssignSeconds + rec.EncodeSeconds
	if sum > rec.DurationSeconds+1e-6 {
		t.Errorf("stage sum %.6fs exceeds total %.6fs", sum, rec.DurationSeconds)
	}
}

// TestTracingOffZeroAlloc pins the pay-for-use contract of the new
// seams: with tracing off, the stage recorder, the ring offer, and
// the exemplar write are allocation-free no-ops.
func TestTracingOffZeroAlloc(t *testing.T) {
	st := &reqStats{}
	t0, t1 := time.Now(), time.Now()
	if n := testing.AllocsPerRun(100, func() { st.stage("kernel", t0, t1) }); n != 0 {
		t.Errorf("stage with tracing off allocates %v times", n)
	}
	var ring *obs.TraceRing
	tr := &obs.ServeTrace{}
	if n := testing.AllocsPerRun(100, func() { ring.Offer(tr, false) }); n != 0 {
		t.Errorf("nil ring Offer allocates %v times", n)
	}
	rec := obs.New()
	if n := testing.AllocsPerRun(100, func() { rec.SetExemplar("http.assign.seconds", 1, "") }); n != 0 {
		t.Errorf("SetExemplar with no trace allocates %v times", n)
	}
}
