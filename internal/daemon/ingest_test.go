package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"pmafia/internal/modelio"
)

// TestIngestEndToEnd drives the full streaming lifecycle through the
// daemon: records stream in over POST /ingest, an explicit refit
// writes generation 1, /assign serves it, more records plus a second
// refit write generation 2, and the freshness check hot-swaps it in —
// the daemon never stops answering.
func TestIngestEndToEnd(t *testing.T) {
	_, m := fitDistinct(t, []int{0, 2, 4}, 41)
	dir := t.TempDir()
	d, base := startDaemon(t, Config{
		ModelDir:    dir,
		SwapCheck:   time.Millisecond,
		IngestModel: "live.pmfm",
		IngestDims:  5,
	})
	defer d.Shutdown(context.Background())

	ingest := func(query string, body []byte) ingestResponse {
		t.Helper()
		resp, err := http.Post(base+"/ingest"+query, "text/csv", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ir ingestResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return ir
	}

	// Stream the records in two chunks, then trigger a refit with an
	// empty body.
	half := m.NumRecords() / 2
	body := csvBody(m)
	ir := ingest("", csvBody(m.Slice(0, half)))
	if ir.Appended != half || ir.Generation != 0 || ir.Pending != half {
		t.Fatalf("first ingest reply %+v", ir)
	}
	ingest("", csvBody(m.Slice(half, m.NumRecords())))
	ir = ingest("?refit=1", nil)
	if !ir.Refitted || ir.Generation != 1 || ir.Pending != 0 || ir.Records != m.NumRecords() {
		t.Fatalf("refit reply %+v", ir)
	}

	// The written generation serves under the ingest model name.
	res1, meta, err := modelio.LoadMeta(filepath.Join(dir, "live.pmfm"))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 {
		t.Fatalf("generation on disk = %d, want 1", meta.Generation)
	}
	want1, err := res1.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := assignLabels(t, base, "live.pmfm", body); !labelsEqual(got, want1) {
		t.Fatal("served labels do not match the streamed model")
	}

	// Stream a second batch that reshapes the model, refit, and wait
	// for the hot swap — assign keeps answering throughout.
	_, m2 := fitDistinct(t, []int{1, 3}, 42)
	ingest("", csvBody(m2))
	ir = ingest("?refit=1", nil)
	if !ir.Refitted || ir.Generation != 2 {
		t.Fatalf("second refit reply %+v", ir)
	}
	res2, _, err := modelio.LoadMeta(filepath.Join(dir, "live.pmfm"))
	if err != nil {
		t.Fatal(err)
	}
	want2, err := res2.Assign(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := assignLabels(t, base, "live.pmfm", body)
		if labelsEqual(got, want2) {
			break
		}
		if !labelsEqual(got, want1) {
			t.Fatal("response matches neither generation: torn model")
		}
		if time.Now().After(deadline) {
			t.Fatal("generation 2 never swapped in")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestIngestErrors pins the endpoint's failure modes: disabled unless
// configured, POST only, and whole well-shaped records only.
func TestIngestErrors(t *testing.T) {
	dir := t.TempDir()
	fitModel(t, dir, "a.pmfm", 43)

	// Not configured: 404.
	plain, base := startDaemon(t, Config{ModelDir: dir})
	resp, err := http.Post(base+"/ingest", "text/csv", bytes.NewReader([]byte("1,2,3,4,5\n")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unconfigured ingest: status %d, want 404", resp.StatusCode)
	}
	plain.Shutdown(context.Background())

	d, base := startDaemon(t, Config{
		ModelDir:    dir,
		IngestModel: "live.pmfm",
		IngestDims:  5,
	})
	defer d.Shutdown(context.Background())

	// GET is rejected.
	resp, err = http.Get(base + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", resp.StatusCode)
	}

	// Wrong dimensionality is a client error.
	resp, err = http.Post(base+"/ingest", "text/csv", bytes.NewReader([]byte("1,2,3\n")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("3-dim body into 5-dim stream: status %d, want 400", resp.StatusCode)
	}

	// A refit over zero records reports failure, not a crash.
	resp, err = http.Post(base+"/ingest?refit=1", "text/csv", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("empty refit: status %d, want 422", resp.StatusCode)
	}
}

// TestIngestModelNameValidation rejects ingest model names escaping
// the model directory.
func TestIngestModelNameValidation(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"../out.pmfm", "a/b.pmfm", `a\b.pmfm`} {
		if _, err := New(Config{Addr: "127.0.0.1:0", ModelDir: dir, IngestModel: name, IngestDims: 3}); err == nil {
			t.Errorf("IngestModel %q accepted", name)
		}
	}
	if _, err := New(Config{Addr: "127.0.0.1:0", ModelDir: dir, IngestModel: "ok.pmfm"}); err == nil {
		t.Error("IngestModel without IngestDims accepted")
	}
}
