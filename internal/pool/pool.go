// Package pool implements the intra-rank worker pool of the
// out-of-core pipeline: each chunk a scanner yields is sharded across a
// fixed set of worker goroutines, every worker folds its record range
// into worker-private tallies, and the caller merges the partials once
// the scan ends. Combined with a prefetching scanner this keeps all
// cores of a rank busy while the next chunk streams in from disk.
package pool

import (
	"sync"

	"pmafia/internal/dataset"
)

// Scan reads src in chunks of chunkRecords and shards each chunk's
// records across workers goroutines: fn(w, chunk, lo, hi) processes
// records [lo, hi) of the chunk on worker w and must touch only state
// private to that worker. Chunk boundaries are barriers — calls for
// chunk k+1 begin only after every worker finished chunk k, because
// scanners may reuse the chunk buffer. With workers <= 1 the scan runs
// inline with no goroutines. Returns the number of records scanned.
func Scan(src dataset.Source, chunkRecords, workers int, fn func(w int, chunk []float64, lo, hi int)) (int64, error) {
	return ScanOffset(src, chunkRecords, workers, func(w int, chunk []float64, _ int64, lo, hi int) {
		fn(w, chunk, lo, hi)
	})
}

// ScanOffset is Scan with the chunk's global record offset (the number
// of records scanned before the chunk) passed to fn, for callers that
// write per-record results into a shared output: the global ranges
// [base+lo, base+hi) handed to the workers are disjoint, so such
// writes are race-free.
func ScanOffset(src dataset.Source, chunkRecords, workers int, fn func(w int, chunk []float64, base int64, lo, hi int)) (int64, error) {
	return ScanOffsetAligned(src, chunkRecords, workers, 1, fn)
}

// ScanOffsetAligned is ScanOffset with worker shard boundaries rounded
// up to multiples of align within each chunk (the final boundary stays
// the chunk end). Batch-kernel callers use it so a kernel block is
// never split across two workers: every shard but the chunk's last is
// a whole number of blocks. Workers whose rounded range is empty skip
// the chunk. align <= 1 reproduces ScanOffset's sharding exactly.
func ScanOffsetAligned(src dataset.Source, chunkRecords, workers, align int, fn func(w int, chunk []float64, base int64, lo, hi int)) (int64, error) {
	if align < 1 {
		align = 1
	}
	sc := src.Scan(chunkRecords)
	defer sc.Close()
	if workers <= 1 {
		var total int64
		for {
			chunk, n := sc.Next()
			if n == 0 {
				break
			}
			fn(0, chunk, total, 0, n)
			total += int64(n)
		}
		return total, sc.Err()
	}

	type job struct {
		chunk  []float64
		base   int64
		lo, hi int
	}
	jobs := make([]chan job, workers)
	var chunkWG sync.WaitGroup // per-chunk barrier
	var exitWG sync.WaitGroup  // worker shutdown
	for w := 0; w < workers; w++ {
		ch := make(chan job, 1)
		jobs[w] = ch
		exitWG.Add(1)
		go func(w int, ch chan job) {
			defer exitWG.Done()
			for j := range ch {
				if j.hi > j.lo {
					fn(w, j.chunk, j.base, j.lo, j.hi)
				}
				chunkWG.Done()
			}
		}(w, ch)
	}
	var total int64
	for {
		chunk, n := sc.Next()
		if n == 0 {
			break
		}
		cut := func(w int) int {
			if w >= workers {
				return n
			}
			b := (w*n/workers + align - 1) / align * align
			if b > n {
				b = n
			}
			return b
		}
		chunkWG.Add(workers)
		for w := 0; w < workers; w++ {
			jobs[w] <- job{chunk: chunk, base: total, lo: cut(w), hi: cut(w + 1)}
		}
		chunkWG.Wait()
		total += int64(n)
	}
	for _, ch := range jobs {
		close(ch)
	}
	exitWG.Wait()
	return total, sc.Err()
}
