package pool

import (
	"sync/atomic"
	"testing"

	"pmafia/internal/dataset"
)

// TestScanCoversEveryRecordOnce checks, for worker counts around and
// beyond the chunk size, that the sharded calls tile each chunk exactly
// — every record processed once, on a stable worker, with per-chunk
// barrier semantics (no two workers ever touch different chunks at
// once, which would break buffer reuse).
func TestScanCoversEveryRecordOnce(t *testing.T) {
	const n, d = 457, 3
	m := dataset.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Row(i)[j] = float64(i)
		}
	}
	for _, workers := range []int{0, 1, 2, 5, 64} {
		for _, chunk := range []int{1, 10, 64, 1000} {
			seen := make([]int32, n)
			total, err := Scan(m, chunk, workers, func(w int, c []float64, lo, hi int) {
				for r := lo; r < hi; r++ {
					atomic.AddInt32(&seen[int(c[r*d])], 1)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if total != n {
				t.Fatalf("workers=%d chunk=%d: total=%d, want %d", workers, chunk, total, n)
			}
			for i, s := range seen {
				if s != 1 {
					t.Fatalf("workers=%d chunk=%d: record %d seen %d times", workers, chunk, i, s)
				}
			}
		}
	}
}

// TestScanWorkerPrivacy checks worker indices stay in range and that a
// given worker's calls never overlap in time (each worker may safely
// own unsynchronized private state).
func TestScanWorkerPrivacy(t *testing.T) {
	const n, d, workers = 2048, 2, 4
	m := dataset.NewMatrix(n, d)
	busy := make([]int32, workers)
	_, err := Scan(m, 128, workers, func(w int, c []float64, lo, hi int) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
		}
		if atomic.AddInt32(&busy[w], 1) != 1 {
			t.Errorf("worker %d reentered concurrently", w)
		}
		for r := lo; r < hi; r++ {
			_ = c[r*d]
		}
		atomic.AddInt32(&busy[w], -1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScanOffsetAlignedShardCuts checks the aligned sharding contract
// the batch-kernel path relies on: within each chunk, every shard
// starts on an align multiple and ends on one (except the shard that
// ends at the chunk end), shards never overlap, and every record is
// still covered exactly once — including the degenerate shapes
// (align > chunk, workers > records, tail chunks).
func TestScanOffsetAlignedShardCuts(t *testing.T) {
	const d = 2
	for _, n := range []int{1, 63, 64, 457, 1000} {
		m := dataset.NewMatrix(n, d)
		for i := 0; i < n; i++ {
			m.Row(i)[0] = float64(i)
		}
		for _, workers := range []int{1, 2, 3, 5, 64} {
			for _, chunk := range []int{50, 64, 97, 256} {
				for _, align := range []int{1, 8, 64, 128} {
					seen := make([]int32, n)
					total, err := ScanOffsetAligned(m, chunk, workers, align, func(w int, c []float64, base int64, lo, hi int) {
						chunkLen := len(c) / d
						if lo%align != 0 {
							t.Errorf("n=%d workers=%d chunk=%d align=%d: shard starts at %d", n, workers, chunk, align, lo)
						}
						if hi%align != 0 && hi != chunkLen {
							t.Errorf("n=%d workers=%d chunk=%d align=%d: shard ends at %d (chunk is %d)", n, workers, chunk, align, hi, chunkLen)
						}
						for r := lo; r < hi; r++ {
							atomic.AddInt32(&seen[int(base)+r], 1)
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if total != int64(n) {
						t.Fatalf("n=%d workers=%d chunk=%d align=%d: total=%d", n, workers, chunk, align, total)
					}
					for i, s := range seen {
						if s != 1 {
							t.Fatalf("n=%d workers=%d chunk=%d align=%d: record %d seen %d times", n, workers, chunk, align, i, s)
						}
					}
				}
			}
		}
	}
}

// TestScanEmptySource checks the degenerate cases terminate.
func TestScanEmptySource(t *testing.T) {
	m := dataset.NewMatrix(0, 4)
	for _, workers := range []int{1, 3} {
		total, err := Scan(m, 16, workers, func(int, []float64, int, int) {
			t.Error("callback on empty source")
		})
		if err != nil || total != 0 {
			t.Fatalf("total=%d err=%v", total, err)
		}
	}
}
