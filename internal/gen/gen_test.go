package gen

import (
	"testing"
	"testing/quick"

	"pmafia/internal/rng"
	"pmafia/internal/unit"
)

func mk(k int, units ...[2][]uint8) *unit.Array {
	a := unit.New(k, len(units))
	for _, u := range units {
		a.Append(u[0], u[1])
	}
	return a
}

func TestMergeMAFIA1D(t *testing.T) {
	dims := make([]uint8, 2)
	bins := make([]uint8, 2)
	// Two 1-dim units in different dims always combine.
	if !MergeMAFIA([]uint8{1}, []uint8{7}, []uint8{3}, []uint8{2}, dims, bins) {
		t.Fatal("1-dim units in different dims must combine")
	}
	if dims[0] != 1 || dims[1] != 3 || bins[0] != 7 || bins[1] != 2 {
		t.Errorf("merged = %v %v", dims, bins)
	}
	// Same dim never combines.
	if MergeMAFIA([]uint8{1}, []uint8{7}, []uint8{1}, []uint8{2}, dims, bins) {
		t.Error("same-dim 1-dim units must not combine")
	}
}

func TestMergeMAFIAPaperExample(t *testing.T) {
	// The paper's motivating example: {a1,b7,c8} and {b7,c8,d9} share
	// dims {b,c} (k-2 = 2 of 3) and must combine into {a1,b7,c8,d9},
	// which the CLIQUE join misses. Use dims 1,7,8,9 with bins 1,7,8,9
	// echoing Figure 2.
	dims := make([]uint8, 4)
	bins := make([]uint8, 4)
	ok := MergeMAFIA(
		[]uint8{1, 7, 8}, []uint8{1, 7, 8},
		[]uint8{7, 8, 9}, []uint8{7, 8, 9},
		dims, bins)
	if !ok {
		t.Fatal("paper example must combine under MAFIA join")
	}
	want := []uint8{1, 7, 8, 9}
	for i := range want {
		if dims[i] != want[i] || bins[i] != want[i] {
			t.Fatalf("merged = %v %v, want %v", dims, bins, want)
		}
	}
	// And must NOT combine under the CLIQUE prefix join.
	if MergeCLIQUE(
		[]uint8{1, 7, 8}, []uint8{1, 7, 8},
		[]uint8{7, 8, 9}, []uint8{7, 8, 9},
		dims, bins) {
		t.Error("paper example must not combine under CLIQUE join")
	}
}

func TestMergeMAFIARejectsBinMismatch(t *testing.T) {
	dims := make([]uint8, 3)
	bins := make([]uint8, 3)
	if MergeMAFIA(
		[]uint8{1, 2}, []uint8{0, 5},
		[]uint8{2, 3}, []uint8{6, 1},
		dims, bins) {
		t.Error("shared dim with different bins must not combine")
	}
}

func TestMergeMAFIARejectsTooFewShared(t *testing.T) {
	dims := make([]uint8, 3)
	bins := make([]uint8, 3)
	// 2-dim units sharing 0 dims: union is 4-wide, not 3.
	if MergeMAFIA(
		[]uint8{1, 2}, []uint8{0, 0},
		[]uint8{3, 4}, []uint8{0, 0},
		dims, bins) {
		t.Error("2-dim units sharing no dims must not combine into 3 dims")
	}
	// Identical dim sets: union is 2-wide.
	if MergeMAFIA(
		[]uint8{1, 2}, []uint8{0, 0},
		[]uint8{1, 2}, []uint8{0, 0},
		dims, bins) {
		t.Error("identical units must not combine")
	}
}

func TestMergeCLIQUE(t *testing.T) {
	dims := make([]uint8, 3)
	bins := make([]uint8, 3)
	if !MergeCLIQUE(
		[]uint8{1, 2}, []uint8{4, 5},
		[]uint8{1, 3}, []uint8{4, 6},
		dims, bins) {
		t.Fatal("prefix-share units must combine")
	}
	if dims[2] != 3 || bins[2] != 6 {
		t.Errorf("merged = %v %v", dims, bins)
	}
	// Prefix bins must match too.
	if MergeCLIQUE(
		[]uint8{1, 2}, []uint8{4, 5},
		[]uint8{1, 3}, []uint8{9, 6},
		dims, bins) {
		t.Error("prefix bin mismatch must not combine")
	}
	// Ordering: b's last dim must exceed a's.
	if MergeCLIQUE(
		[]uint8{1, 3}, []uint8{4, 6},
		[]uint8{1, 2}, []uint8{4, 5},
		dims, bins) {
		t.Error("descending pair must not combine (avoids double generation)")
	}
}

func TestMAFIASupersetOfCLIQUE(t *testing.T) {
	// Every pair CLIQUE combines, MAFIA combines too (same result).
	f := func(seed uint64) bool {
		s := rng.New(seed)
		k1 := 2 + int(seed%3)
		aD := make([]uint8, k1)
		aB := make([]uint8, k1)
		bD := make([]uint8, k1)
		bB := make([]uint8, k1)
		cur := uint8(0)
		for i := 0; i < k1; i++ {
			cur += 1 + uint8(s.Intn(3))
			aD[i] = cur
			aB[i] = uint8(s.Intn(4))
		}
		copy(bD, aD)
		copy(bB, aB)
		bD[k1-1] = aD[k1-1] + 1 + uint8(s.Intn(3))
		bB[k1-1] = uint8(s.Intn(4))
		d1 := make([]uint8, k1+1)
		b1 := make([]uint8, k1+1)
		d2 := make([]uint8, k1+1)
		b2 := make([]uint8, k1+1)
		if !MergeCLIQUE(aD, aB, bD, bB, d1, b1) {
			return false // constructed to be CLIQUE-joinable
		}
		if !MergeMAFIA(aD, aB, bD, bB, d2, b2) {
			return false
		}
		for i := range d1 {
			if d1[i] != d2[i] || b1[i] != b2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateChoose(t *testing.T) {
	// 4 one-dim dense units in distinct dims -> C(4,2)=6 CDUs, all
	// units combined.
	du := mk(1,
		[2][]uint8{{0}, {1}},
		[2][]uint8{{1}, {2}},
		[2][]uint8{{2}, {3}},
		[2][]uint8{{3}, {4}},
	)
	cdus, combined := Generate(du, MergeMAFIA)
	if cdus.Len() != 6 {
		t.Errorf("Ncdu = %d, want 6", cdus.Len())
	}
	for i, c := range combined {
		if !c {
			t.Errorf("unit %d not marked combined", i)
		}
	}
}

func TestGenerateNonCombinable(t *testing.T) {
	// A unit in the same dim as another never combines with it.
	du := mk(1,
		[2][]uint8{{0}, {1}},
		[2][]uint8{{0}, {2}},
	)
	cdus, combined := Generate(du, MergeMAFIA)
	if cdus.Len() != 0 {
		t.Errorf("Ncdu = %d, want 0", cdus.Len())
	}
	if combined[0] || combined[1] {
		t.Error("non-combinable units marked combined")
	}
}

func TestGenerateRangeUnionEqualsFull(t *testing.T) {
	s := rng.New(9)
	du := unit.New(1, 10)
	for d := 0; d < 10; d++ {
		du.Append([]uint8{uint8(d)}, []uint8{uint8(s.Intn(3))})
	}
	full, fullComb := Generate(du, MergeMAFIA)
	// Split the range across 3 "ranks" and union results.
	bounds := PartitionPairs(du.Len(), 3)
	merged := unit.New(2, 0)
	comb := make([]bool, du.Len())
	for r := 0; r < 3; r++ {
		c, cb := GenerateRange(du, bounds[r], bounds[r+1], MergeMAFIA)
		merged.AppendRaw(c.Dims, c.Bins)
		for i, v := range cb {
			comb[i] = comb[i] || v
		}
	}
	if merged.Len() != full.Len() {
		t.Errorf("ranged union Ncdu = %d, full = %d", merged.Len(), full.Len())
	}
	merged.Sort()
	full.Sort()
	for i := 0; i < full.Len(); i++ {
		if merged.Key(i) != full.Key(i) {
			t.Fatalf("ranged union differs from full at %d", i)
		}
	}
	for i := range comb {
		if comb[i] != fullComb[i] {
			t.Fatalf("combined mask differs at %d", i)
		}
	}
}

func TestMarkRepeatsAndCompact(t *testing.T) {
	cdus := mk(2,
		[2][]uint8{{0, 1}, {1, 1}},
		[2][]uint8{{0, 2}, {1, 1}},
		[2][]uint8{{0, 1}, {1, 1}}, // repeat of 0
		[2][]uint8{{0, 2}, {1, 1}}, // repeat of 1
		[2][]uint8{{0, 3}, {1, 1}},
	)
	marks := MarkRepeats(cdus, 0, cdus.Len())
	want := []bool{false, false, true, true, false}
	for i := range want {
		if marks[i] != want[i] {
			t.Errorf("mark[%d] = %v, want %v", i, marks[i], want[i])
		}
	}
	uniq := CompactUnique(cdus, marks)
	if uniq.Len() != 3 {
		t.Errorf("unique = %d, want 3", uniq.Len())
	}
}

func TestMarkRepeatsRangesComposable(t *testing.T) {
	// Marks computed per-range must equal the full-array marks.
	s := rng.New(10)
	cdus := unit.New(2, 40)
	for i := 0; i < 40; i++ {
		d1 := uint8(s.Intn(3))
		cdus.Append([]uint8{d1, d1 + 1 + uint8(s.Intn(2))}, []uint8{uint8(s.Intn(2)), uint8(s.Intn(2))})
	}
	full := MarkRepeats(cdus, 0, cdus.Len())
	var stitched []bool
	for r := 0; r < 4; r++ {
		lo, hi := RangeShare(cdus.Len(), r, 4)
		stitched = append(stitched, MarkRepeats(cdus, lo, hi)...)
	}
	for i := range full {
		if full[i] != stitched[i] {
			t.Fatalf("mark %d differs between full and stitched", i)
		}
	}
}

func TestPartitionPairsProperties(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 100, 1000} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			b := PartitionPairs(n, p)
			if len(b) != p+1 || b[0] != 0 || b[p] != n {
				t.Fatalf("n=%d p=%d: bounds %v", n, p, b)
			}
			var prev int
			var maxW, minW int64 = 0, 1 << 62
			for r := 0; r < p; r++ {
				if b[r] < prev {
					t.Fatalf("n=%d p=%d: non-monotone %v", n, p, b)
				}
				prev = b[r]
				var w int64
				for i := b[r]; i < b[r+1]; i++ {
					w += PairWork(n, i)
				}
				if w > maxW {
					maxW = w
				}
				if w < minW {
					minW = w
				}
			}
			// Imbalance is bounded by the largest single-unit work
			// (one pair row is at most n-1 comparisons).
			if n > p*2 && maxW-minW > int64(n)+2 {
				t.Errorf("n=%d p=%d: imbalance %d > n+2", n, p, maxW-minW)
			}
		}
	}
}

func TestPartitionQuadraticAgreesWithExact(t *testing.T) {
	for _, n := range []int{10, 100, 1234} {
		for _, p := range []int{2, 4, 8, 16} {
			exact := PartitionPairs(n, p)
			quad := PartitionPairsQuadratic(n, p)
			for r := range exact {
				diff := exact[r] - quad[r]
				if diff < -2 || diff > 2 {
					t.Errorf("n=%d p=%d rank %d: exact %d vs quadratic %d", n, p, r, exact[r], quad[r])
				}
			}
		}
	}
}

func TestPartitionFirstRankSmallest(t *testing.T) {
	// Early units carry more pair work, so the first rank's index range
	// must be the narrowest.
	b := PartitionPairs(1000, 4)
	first := b[1] - b[0]
	last := b[4] - b[3]
	if first >= last {
		t.Errorf("first range %d should be narrower than last %d", first, last)
	}
}

func TestRangeShare(t *testing.T) {
	total := 0
	prev := 0
	for r := 0; r < 5; r++ {
		lo, hi := RangeShare(17, r, 5)
		if lo != prev {
			t.Fatalf("gap at rank %d", r)
		}
		total += hi - lo
		prev = hi
	}
	if total != 17 {
		t.Errorf("shares cover %d, want 17", total)
	}
}

func BenchmarkGenerate(b *testing.B) {
	s := rng.New(1)
	du := unit.New(2, 200)
	for i := 0; i < 200; i++ {
		d1 := uint8(s.Intn(10))
		du.Append([]uint8{d1, d1 + 1 + uint8(s.Intn(5))}, []uint8{uint8(s.Intn(5)), uint8(s.Intn(5))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(du, MergeMAFIA)
	}
}

func TestPartitionDegenerate(t *testing.T) {
	// p < 1 coerces to 1.
	b := PartitionPairs(10, 0)
	if len(b) != 2 || b[1] != 10 {
		t.Errorf("p=0 bounds %v", b)
	}
	q := PartitionPairsQuadratic(10, 0)
	if len(q) != 2 || q[1] != 10 {
		t.Errorf("p=0 quadratic bounds %v", q)
	}
	// More ranks than units: trailing ranks get empty ranges but the
	// partition stays valid.
	b = PartitionPairs(3, 8)
	if b[len(b)-1] != 3 {
		t.Errorf("n<p bounds %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("non-monotone %v", b)
		}
	}
}

func TestRangeShareDegenerate(t *testing.T) {
	lo, hi := RangeShare(5, 0, 0)
	if lo != 0 || hi != 5 {
		t.Errorf("p=0 share = [%d,%d)", lo, hi)
	}
}

func TestCompactUniquePanicsOnBadMarks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on mark/CDU length mismatch")
		}
	}()
	cdus := mk(1, [2][]uint8{{0}, {1}})
	CompactUnique(cdus, []bool{true, false})
}

func TestMarkRepeatsClamping(t *testing.T) {
	cdus := mk(1,
		[2][]uint8{{0}, {1}},
		[2][]uint8{{0}, {1}},
	)
	marks := MarkRepeats(cdus, -5, 99)
	if len(marks) != 2 || marks[0] || !marks[1] {
		t.Errorf("clamped marks = %v", marks)
	}
}
