// Package gen implements candidate-dense-unit (CDU) generation: the
// paper's MAFIA join (any two (k-1)-dimensional dense units sharing any
// k-2 dimensions combine into a k-dimensional candidate), the CLIQUE
// prefix join used by the baseline, repeat elimination, and the optimal
// task-partitioning equation (eq. 1) that splits the O(Ndu²) pairwise
// generation work evenly across processors.
package gen

import (
	"fmt"
	"math"

	"pmafia/internal/unit"
)

// Join attempts to combine two units of equal dimensionality k-1 into
// one unit of dimensionality k. It reports ok=false when the pair is
// not combinable under the join's rule. Implementations must write the
// result into dims/bins, which have length k.
type Join func(aDims, aBins, bDims, bBins, dims, bins []uint8) (ok bool)

// MergeMAFIA is the paper's join: two (k-1)-dimensional units combine
// when they share any k-2 dimensions with identical bins on every
// shared dimension; the result is the ordered union. For k-1 = 1 any
// two units in different dimensions combine.
func MergeMAFIA(aDims, aBins, bDims, bBins, dims, bins []uint8) bool {
	k1 := len(aDims)
	// Merge the two ordered dim lists; reject if a shared dim has
	// different bins or the union is not exactly k1+1 wide.
	i, j, w := 0, 0, 0
	for i < k1 && j < k1 {
		switch {
		case aDims[i] < bDims[j]:
			if w >= len(dims) {
				return false
			}
			dims[w], bins[w] = aDims[i], aBins[i]
			i++
			w++
		case aDims[i] > bDims[j]:
			if w >= len(dims) {
				return false
			}
			dims[w], bins[w] = bDims[j], bBins[j]
			j++
			w++
		default: // shared dimension
			if aBins[i] != bBins[j] {
				return false
			}
			if w >= len(dims) {
				return false
			}
			dims[w], bins[w] = aDims[i], aBins[i]
			i++
			j++
			w++
		}
	}
	for i < k1 {
		if w >= len(dims) {
			return false
		}
		dims[w], bins[w] = aDims[i], aBins[i]
		i++
		w++
	}
	for j < k1 {
		if w >= len(dims) {
			return false
		}
		dims[w], bins[w] = bDims[j], bBins[j]
		j++
		w++
	}
	return w == len(dims)
}

// MergeCLIQUE is the baseline join from CLIQUE [2]: the two units must
// agree on their first k-2 dimensions and bins, and their last
// dimensions must differ (the smaller-dimension unit first). This is
// the Apriori-style prefix join the paper shows misses candidates.
func MergeCLIQUE(aDims, aBins, bDims, bBins, dims, bins []uint8) bool {
	k1 := len(aDims)
	for x := 0; x < k1-1; x++ {
		if aDims[x] != bDims[x] || aBins[x] != bBins[x] {
			return false
		}
	}
	if aDims[k1-1] >= bDims[k1-1] {
		return false
	}
	copy(dims, aDims)
	copy(bins, aBins)
	dims[k1] = bDims[k1-1]
	bins[k1] = bBins[k1-1]
	return true
}

// GenerateRange builds the CDUs obtainable by combining dense units
// i ∈ [lo, hi) with every dense unit j > i, the work assignment of one
// processor under the partitioning of eq. 1. It returns the CDUs (with
// duplicates — elimination is a separate step, as in the paper) and a
// full-length combined mask marking every dense unit that participated
// in at least one successful join; ranks OR their masks to find the
// non-combinable units that get registered as potential clusters.
func GenerateRange(du *unit.Array, lo, hi int, join Join) (cdus *unit.Array, combined []bool) {
	n := du.Len()
	k := du.K + 1
	cdus = unit.New(k, 0)
	combined = make([]bool, n)
	dims := make([]uint8, k)
	bins := make([]uint8, k)
	for i := lo; i < hi && i < n; i++ {
		aD, aB := du.Unit(i)
		for j := i + 1; j < n; j++ {
			bD, bB := du.Unit(j)
			if join(aD, aB, bD, bB, dims, bins) {
				cdus.AppendRaw(dims, bins)
				combined[i] = true
				combined[j] = true
			}
		}
	}
	return cdus, combined
}

// Generate builds all CDUs from the full dense-unit array.
func Generate(du *unit.Array, join Join) (*unit.Array, []bool) {
	return GenerateRange(du, 0, du.Len(), join)
}

// MarkRepeats returns, for CDUs with index in [lo, hi), whether each is
// a repeat of an identical CDU at a smaller index (the paper's
// Eliminate-repeat-CDUs, with the O(Ncdu²) pairwise scan replaced by a
// first-occurrence index). The returned slice has length hi-lo.
func MarkRepeats(cdus *unit.Array, lo, hi int) []bool {
	n := cdus.Len()
	if hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	first := make(map[string]int, n)
	for i := 0; i < n; i++ {
		key := cdus.Key(i)
		if _, ok := first[key]; !ok {
			first[key] = i
		}
	}
	marks := make([]bool, hi-lo)
	for i := lo; i < hi; i++ {
		if first[cdus.Key(i)] < i {
			marks[i-lo] = true
		}
	}
	return marks
}

// CompactUnique builds a new array with the marked repeats removed;
// marks must cover the whole array.
func CompactUnique(cdus *unit.Array, repeats []bool) *unit.Array {
	if len(repeats) != cdus.Len() {
		panic(fmt.Sprintf("gen: %d marks for %d CDUs", len(repeats), cdus.Len()))
	}
	out := unit.New(cdus.K, cdus.Len())
	for i := 0; i < cdus.Len(); i++ {
		if !repeats[i] {
			d, b := cdus.Unit(i)
			out.AppendRaw(d, b)
		}
	}
	return out
}

// MarkRepeatsBitset sets, for CDUs with index in [lo, hi), the bits of
// repeats whose CDU duplicates an identical CDU at a smaller index. It
// is MarkRepeats in the bitset form the parallel dedup OR-reduces:
// ranks mark disjoint index blocks of a shared full-length set, OR the
// words, and compact identically. repeats must span the whole array.
func MarkRepeatsBitset(cdus *unit.Array, lo, hi int, repeats *unit.Bitset) {
	n := cdus.Len()
	if repeats.Len() != n {
		panic(fmt.Sprintf("gen: %d-bit mark set for %d CDUs", repeats.Len(), n))
	}
	if hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	first := make(map[string]int, n)
	for i := 0; i < n; i++ {
		key := cdus.Key(i)
		if _, ok := first[key]; !ok {
			first[key] = i
		}
	}
	for i := lo; i < hi; i++ {
		if first[cdus.Key(i)] < i {
			repeats.Set(i)
		}
	}
}

// CompactUniqueBitset is CompactUnique over a bitset of repeat marks.
func CompactUniqueBitset(cdus *unit.Array, repeats *unit.Bitset) *unit.Array {
	if repeats.Len() != cdus.Len() {
		panic(fmt.Sprintf("gen: %d-bit mark set for %d CDUs", repeats.Len(), cdus.Len()))
	}
	out := unit.New(cdus.K, cdus.Len()-repeats.Count())
	for i := 0; i < cdus.Len(); i++ {
		if !repeats.Get(i) {
			d, b := cdus.Unit(i)
			out.AppendRaw(d, b)
		}
	}
	return out
}

// PairWork returns the number of pairwise comparisons performed for
// unit index i out of n units: it is compared with every unit after it.
func PairWork(n, i int) int64 { return int64(n - 1 - i) }

// TotalPairWork returns n(n-1)/2, the total comparison count.
func TotalPairWork(n int) int64 { return int64(n) * int64(n-1) / 2 }

// PartitionPairs returns p+1 boundaries 0 = n₀ ≤ n₁ ≤ … ≤ n_p = n such
// that each rank r, processing unit indices [n_r, n_{r+1}) against all
// later units, performs as close as possible to an equal share of the
// total pairwise work — the integer-exact version of eq. 1.
func PartitionPairs(n, p int) []int {
	if p < 1 {
		p = 1
	}
	bounds := make([]int, p+1)
	total := TotalPairWork(n)
	var cum int64
	idx := 0
	for r := 1; r < p; r++ {
		target := total * int64(r) / int64(p)
		// Advance while taking the next unit lands the cumulative work
		// closer to the target than stopping does.
		for idx < n {
			w := PairWork(n, idx)
			if cum+w-target > target-cum {
				break
			}
			cum += w
			idx++
		}
		bounds[r] = idx
	}
	bounds[p] = n
	return bounds
}

// PartitionPairsQuadratic solves eq. 1 the paper's way: iteratively,
// each boundary is the root of the quadratic that equates the rank's
// pair count to Ndu(Ndu-1)/(2p). It returns p+1 boundaries like
// PartitionPairs; the two agree within rounding (verified in tests).
func PartitionPairsQuadratic(n, p int) []int {
	if p < 1 {
		p = 1
	}
	bounds := make([]int, p+1)
	nf := float64(n)
	for r := 1; r < p; r++ {
		// Cumulative work of the first x units is x(2n-1-x)/2; set it
		// equal to r/p of the total n(n-1)/2 and solve for x.
		c := nf * (nf - 1) * float64(r) / float64(p)
		disc := (2*nf-1)*(2*nf-1) - 4*c
		if disc < 0 {
			disc = 0
		}
		x := ((2*nf - 1) - math.Sqrt(disc)) / 2
		b := int(math.Round(x))
		if b < bounds[r-1] {
			b = bounds[r-1]
		}
		if b > n {
			b = n
		}
		bounds[r] = b
	}
	bounds[p] = n
	return bounds
}

// RangeShare returns the contiguous index range [lo, hi) of rank out of
// p over n items under an even block distribution — the partitioning
// used for the linear-work task-parallel steps (dense-unit
// identification and data-structure construction).
func RangeShare(n, rank, p int) (lo, hi int) {
	if p <= 0 {
		return 0, n
	}
	return rank * n / p, (rank + 1) * n / p
}
