package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pmafia/internal/clique"
	"pmafia/internal/datagen"
	"pmafia/internal/mafia"
	"pmafia/internal/quality"
	"pmafia/internal/tabular"
)

// table3Spec is the Table 3 data set: 400 k records (scaled), 10 dims,
// two clusters in different 4-dimensional subspaces — the paper's
// {1,7,8,9} and {2,3,4,5}. Cluster extents deliberately do not align
// with a 10-bin uniform grid, which is what makes fixed discretization
// lose boundary mass.
func table3Spec(o *Options) datagen.Spec {
	return datagen.Spec{
		Dims:    10,
		Records: o.scaled(40000),
		Clusters: []datagen.Cluster{
			boxCluster(23, 39, 1, 7, 8, 9),
			boxCluster(52, 68, 2, 3, 4, 5),
		},
		NoiseFraction: 1.0, // dilute so per-cell CLIQUE densities behave like the paper's
		Seed:          o.Seed + 6,
	}
}

// clusterDimsString renders the subspaces of the discovered clusters,
// e.g. "{1,7,8,9} {2,3,4,5}".
func clusterDimsString(res *mafia.Result) string {
	var subs []string
	for _, c := range res.Clusters {
		parts := make([]string, len(c.Dims))
		for i, d := range c.Dims {
			parts[i] = fmt.Sprintf("%d", d)
		}
		subs = append(subs, "{"+strings.Join(parts, ",")+"}")
	}
	sort.Strings(subs)
	if len(subs) > 4 {
		subs = append(subs[:4], fmt.Sprintf("(+%d more)", len(subs)-4))
	}
	return strings.Join(subs, " ")
}

func runTable3(o *Options) ([]*tabular.Table, error) {
	spec := table3Spec(o)
	m, truth, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("Quality of clustering, %d records, 10-d data, 2 clusters each in 4 dimensions", m.NumRecords()),
		"system", "clusters_discovered", "subspaces_exact", "mean_volume_recall", "mean_boundary_error")

	type sys struct {
		name string
		run  func() (*mafia.Result, error)
	}
	systems := []sys{
		{"CLIQUE (fixed 10 bins)", func() (*mafia.Result, error) {
			return clique.Run(m, clique.Config{Bins: 10, Tau: 0.01})
		}},
		{"CLIQUE (variable bins)", func() (*mafia.Result, error) {
			// "arbitrary number of bins in each dimension (5..20)"
			bins := []int{5, 12, 7, 20, 9, 15, 6, 18, 11, 8}
			return clique.Run(m, clique.Config{BinsPerDim: bins, Tau: 0.01})
		}},
		{"pMAFIA", func() (*mafia.Result, error) {
			return mafia.Run(m, mafia.Config{})
		}},
	}
	for _, s := range systems {
		res, err := s.run()
		if err != nil {
			return nil, err
		}
		q := quality.Evaluate(res, truth)
		t.AddRow(s.name,
			clusterDimsString(res),
			fmt.Sprintf("%v", q.AllSubspacesExact),
			tabular.F(q.MeanVolumeRecall),
			tabular.F(q.MeanBoundaryError))
	}
	return []*tabular.Table{t}, nil
}
