package experiments

import (
	"fmt"

	"pmafia/internal/datagen"
	"pmafia/internal/mafia"
	"pmafia/internal/obs"
	"pmafia/internal/sp2"
	"pmafia/internal/tabular"
)

// runCriticalPath attributes the largest swept machine's Sim makespan
// over the event DAG: for every inter-collective gap the slowest
// rank's compute (by engine phase), plus the modeled communication by
// collective kind — the "why not faster" answer behind the speedup
// curves. The attribution is exact: the table's seconds sum to the
// reported parallel time.
func runCriticalPath(o *Options) ([]*tabular.Table, error) {
	spec, err := fig3Data(o)
	if err != nil {
		return nil, err
	}
	m, _, err := datagen.Generate(*spec)
	if err != nil {
		return nil, err
	}
	var tables []*tabular.Table
	for _, p := range []int{o.Procs[0], o.Procs[len(o.Procs)-1]} {
		rec := obs.New()
		res, err := mafia.RunParallel(shard(m, p), fullDomains(spec.Dims),
			mafia.Config{Recorder: rec}, sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		cp := rec.CriticalPath(res.Report.RankSeconds)
		t := cp.Table()
		t.Title = fmt.Sprintf("p=%d: %s", p, t.Title)
		rt := cp.RankTable()
		rt.Title = fmt.Sprintf("p=%d: %s", p, rt.Title)
		tables = append(tables, t, rt)
	}
	return tables, nil
}
