package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pmafia/internal/sp2"
	"pmafia/internal/tabular"
)

// smallOpts keeps the harness fast for unit testing.
func smallOpts() *Options {
	return &Options{
		Scale: 0.15,
		Seed:  7,
		Procs: []int{1, 2, 4},
		Mode:  sp2.Sim,
		Out:   &bytes.Buffer{},
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Error("table1 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := RunOne("nope", smallOpts()); err == nil {
		t.Error("unknown id: want error")
	}
}

func TestFig3SpeedupShape(t *testing.T) {
	// Use a larger data set than the other harness tests: with too few
	// records the replicated per-rank work (grid construction, cluster
	// assembly) dominates and the speedup test becomes noise-bound.
	o := smallOpts()
	o.Scale = 0.5
	o.Procs = []int{1, 4}
	o.normalize()
	tables, err := runFig3(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != len(o.Procs) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The paper reports near-linear speedups; at this reduced scale
	// demand at least half-linear on 4 ranks.
	last := tb.Rows[len(tb.Rows)-1]
	speedup := parseF(t, last[2])
	if speedup < 2 {
		t.Errorf("speedup %.2f on 4 procs, want >= 2", speedup)
	}
}

func TestTable1CliqueSlower(t *testing.T) {
	o := smallOpts()
	o.Procs = []int{1, 2}
	o.normalize()
	tables, err := runTable1Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, row := range tb.Rows {
		over := parseF(t, row[5])
		if over < 1.5 {
			t.Errorf("procs %s: pMAFIA only %.2fx faster than CLIQUE — paper reports 40-80x at full scale", row[0], over)
		}
	}
}

func TestTable2ExactBinomials(t *testing.T) {
	o := smallOpts()
	o.normalize()
	tables, err := runTable2(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// pMAFIA rows must be exactly C(7,k) for k=2..7 (paper's Table 2).
	want := map[string][2]string{
		"2": {"21", "21"}, "3": {"35", "35"}, "4": {"35", "35"},
		"5": {"21", "21"}, "6": {"7", "7"}, "7": {"1", "1"},
	}
	for _, row := range tb.Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w[0] || row[2] != w[1] {
				t.Errorf("dimension %s: pMAFIA Ncdu/Ndu = %s/%s, want %s/%s", row[0], row[1], row[2], w[0], w[1])
			}
			// CLIQUE must generate at least as many CDUs.
			mc := parseF(t, row[1])
			cc := parseF(t, row[3])
			if cc < mc {
				t.Errorf("dimension %s: CLIQUE Ncdu %v < pMAFIA %v", row[0], cc, mc)
			}
		}
	}
}

func TestFig5LinearInN(t *testing.T) {
	o := smallOpts()
	o.Procs = []int{4}
	o.normalize()
	tables, err := runFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) < 3 {
		t.Fatal("too few rows")
	}
	// time per 1k records should stay roughly flat (linear scaling):
	// ratio of last to first within 3x.
	first := parseF(t, tb.Rows[0][2])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][2])
	if last > first*3 || first > last*3 {
		t.Errorf("per-record time drifts: %.4f vs %.4f s/1k", first, last)
	}
}

func TestFig7GrowsWithClusterDim(t *testing.T) {
	o := smallOpts()
	o.Procs = []int{4}
	o.normalize()
	tables, err := runFig7(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Total CDUs must grow superlinearly with cluster dimensionality
	// (sum of binomials).
	firstC := parseF(t, tb.Rows[0][2])
	lastC := parseF(t, tb.Rows[len(tb.Rows)-1][2])
	if lastC < firstC*4 {
		t.Errorf("CDU count barely grew: %v -> %v", firstC, lastC)
	}
}

func TestTable3QualityOrdering(t *testing.T) {
	o := smallOpts()
	o.normalize()
	tables, err := runTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var mafiaRecall, cliqueRecall float64
	var mafiaExact string
	for _, row := range tb.Rows {
		switch {
		case strings.HasPrefix(row[0], "pMAFIA"):
			mafiaRecall = parseF(t, row[3])
			mafiaExact = row[2]
		case strings.HasPrefix(row[0], "CLIQUE (fixed"):
			cliqueRecall = parseF(t, row[3])
		}
	}
	if mafiaExact != "true" {
		t.Error("pMAFIA did not recover both subspaces exactly")
	}
	if mafiaRecall < cliqueRecall {
		t.Errorf("pMAFIA volume recall %.3f < CLIQUE %.3f", mafiaRecall, cliqueRecall)
	}
	if mafiaRecall < 0.9 {
		t.Errorf("pMAFIA volume recall %.3f, want >= 0.9", mafiaRecall)
	}
}

func TestRunOneRendersOutput(t *testing.T) {
	var out bytes.Buffer
	var csv bytes.Buffer
	o := smallOpts()
	o.Out = &out
	o.CSV = &csv
	o.Procs = []int{1, 2}
	if err := RunOne("ablation-count", o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "strategy") {
		t.Errorf("missing table header: %q", out.String())
	}
	if !strings.Contains(csv.String(), "strategy,time_s") {
		t.Errorf("missing CSV: %q", csv.String())
	}
}

func TestModelFitQuality(t *testing.T) {
	o := smallOpts()
	o.Scale = 0.5
	o.normalize()
	tables, err := runModelFit(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	fit := tables[1].Rows[0]
	r2 := parseF(t, fit[4])
	// The harness takes best-of-3 per point, but a loaded single-core
	// CI host still perturbs sub-10ms measurements; standalone runs
	// reach R2 ~ 0.97 (EXPERIMENTS.md).
	if r2 < 0.6 {
		t.Errorf("Amdahl fit R2 = %v, want >= 0.6 (the run should follow serial + work/p)", r2)
	}
	frac := parseF(t, fit[2])
	if frac < 0 || frac > 0.9 {
		t.Errorf("serial fraction = %v out of a plausible range", frac)
	}
}

func TestPhasesPopulationDominates(t *testing.T) {
	o := smallOpts()
	o.Scale = 0.5
	o.normalize()
	tables, err := runPhases(o)
	if err != nil {
		t.Fatal(err)
	}
	totals := tables[1].Rows[0]
	share := parseF(t, totals[2])
	// §5.3: the bulk of the time goes to populating CDUs.
	if share < 0.4 {
		t.Errorf("population share = %v, want the dominant phase (>= 0.4)", share)
	}
}

func TestSVGOutput(t *testing.T) {
	dir := t.TempDir()
	o := smallOpts()
	o.Procs = []int{1, 2, 4}
	o.SVGDir = dir
	if err := RunOne("fig7", o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "polyline") {
		t.Errorf("fig7.svg content unexpected: %.120s", data)
	}
	// Non-figure experiments must not emit SVGs.
	if err := RunOne("ablation-count", o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ablation-count.svg")); err == nil {
		t.Error("non-figure experiment produced an SVG")
	}
}

func TestTableChartConversion(t *testing.T) {
	tb := tabular.New("t", "x", "y1", "label", "y2")
	tb.AddRow("1", "10", "a", "0.5")
	tb.AddRow("2", "20", "b", "0.25")
	c, err := tableChart(tb, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 2 {
		t.Fatalf("series = %d (non-numeric column must be skipped)", len(c.Series))
	}
	if c.Series[0].Name != "y1" || c.Series[1].Name != "y2" {
		t.Errorf("series names %q %q", c.Series[0].Name, c.Series[1].Name)
	}
	if _, err := tableChart(tabular.New("e", "a", "b"), false, false); err == nil {
		t.Error("empty table: want error")
	}
	bad := tabular.New("b", "x", "y")
	bad.AddRow("p", "1")
	bad.AddRow("q", "2")
	if _, err := tableChart(bad, false, false); err == nil {
		t.Error("non-numeric x: want error")
	}
}

// TestRunAllSmoke executes every registered experiment end-to-end at a
// tiny scale, so each driver's data generation, run and rendering path
// stays exercised.
func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var out bytes.Buffer
	o := &Options{
		Scale: 0.05,
		Seed:  13,
		Procs: []int{1, 2},
		Mode:  sp2.Sim,
		Out:   &out,
	}
	if err := RunAll(o); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(out.String(), e.Title) {
			t.Errorf("output missing experiment %q", e.ID)
		}
	}
}
