package experiments

import (
	"fmt"

	"pmafia/internal/clique"
	"pmafia/internal/datagen"
	"pmafia/internal/mafia"
	"pmafia/internal/sp2"
	"pmafia/internal/tabular"
)

// fig3Data is the 30-dimensional, 5-clusters-in-6-d-subspaces data set
// of Figure 3 (8.3 M records in the paper, scaled down here).
func fig3Data(o *Options) (*datagen.Spec, error) {
	spec := &datagen.Spec{
		Dims:    30,
		Records: o.scaled(60000),
		Clusters: []datagen.Cluster{
			boxCluster(12, 20, 0, 1, 2, 3, 4, 5),
			boxCluster(30, 38, 6, 7, 8, 9, 10, 11),
			boxCluster(48, 56, 12, 13, 14, 15, 16, 17),
			boxCluster(62, 70, 18, 19, 20, 21, 22, 23),
			boxCluster(80, 88, 24, 25, 26, 27, 28, 29),
		},
		Seed: o.Seed,
	}
	return spec, nil
}

func runFig3(o *Options) ([]*tabular.Table, error) {
	spec, err := fig3Data(o)
	if err != nil {
		return nil, err
	}
	m, _, err := datagen.Generate(*spec)
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("pMAFIA run times, %d-d data, %d records, 5 clusters each of 6 dimensions", spec.Dims, m.NumRecords()),
		"procs", "time_s", "speedup", "efficiency", "comm_s")
	var t1 float64
	for _, p := range o.Procs {
		res, err := mafia.RunParallel(shard(m, p), fullDomains(spec.Dims), mafia.Config{}, sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		if p == o.Procs[0] {
			t1 = res.Seconds * float64(p) // normalize in case procs[0] != 1
		}
		sp := t1 / res.Seconds
		t.AddRow(tabular.I(p), tabular.F(res.Seconds), tabular.F(sp), tabular.F(sp/float64(p)),
			tabular.F(res.Report.CommSeconds))
	}
	return []*tabular.Table{t}, nil
}

// table1Data is the 15-dimensional, one-cluster-in-5-d data set of
// Table 1 / Figure 4 (300 k records in the paper).
func table1Data(o *Options) (*datagen.Spec, error) {
	spec := &datagen.Spec{
		Dims:    15,
		Records: o.scaled(50000),
		Clusters: []datagen.Cluster{
			boxCluster(35, 43, 2, 5, 8, 11, 14),
		},
		Seed: o.Seed + 1,
	}
	return spec, nil
}

func runTable1Fig4(o *Options) ([]*tabular.Table, error) {
	spec, err := table1Data(o)
	if err != nil {
		return nil, err
	}
	m, _, err := datagen.Generate(*spec)
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("Execution times (s), %d records, 15-d data, 1 cluster in 5 dimensions", m.NumRecords()),
		"procs", "pMAFIA_s", "CLIQUE_s", "pMAFIA_speedup", "CLIQUE_speedup", "speedup_over_CLIQUE")
	var m1, c1 float64
	for _, p := range o.Procs {
		shards := shard(m, p)
		doms := fullDomains(spec.Dims)
		mres, err := mafia.RunParallel(shards, doms, mafia.Config{}, sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		// The paper runs CLIQUE with 10 bins and a uniform 2% density
		// threshold for this comparison (§5.4).
		cres, err := clique.RunParallel(shards, doms, clique.Config{Bins: 10, Tau: 0.02}, sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		if p == o.Procs[0] {
			m1 = mres.Seconds * float64(p)
			c1 = cres.Seconds * float64(p)
		}
		t.AddRow(tabular.I(p),
			tabular.F(mres.Seconds), tabular.F(cres.Seconds),
			tabular.F(m1/mres.Seconds), tabular.F(c1/cres.Seconds),
			tabular.F(cres.Seconds/mres.Seconds))
	}
	return []*tabular.Table{t}, nil
}

func runTable2(o *Options) ([]*tabular.Table, error) {
	// One 7-dimensional cluster embedded in 10-dimensional data
	// (5.4 M records in the paper).
	spec := datagen.Spec{
		Dims:    10,
		Records: o.scaled(40000),
		Clusters: []datagen.Cluster{
			boxCluster(30, 42, 0, 2, 3, 5, 6, 8, 9),
		},
		Seed: o.Seed + 2,
	}
	m, _, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	mres, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		return nil, err
	}
	// The paper's comparison point is its modified implementation of
	// CLIQUE: uniform 10-bin grids, 1% threshold, but the
	// any-(k-2)-share join (§5.5).
	cres, err := clique.Run(m, clique.Config{Bins: 10, Tau: 0.01, Modified: true})
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("CDUs generated per dimension, %d records (pMAFIA vs modified CLIQUE)", m.NumRecords()),
		"dimension", "pMAFIA_Ncdu", "pMAFIA_Ndu", "CLIQUE_Ncdu", "CLIQUE_Ndu")
	maxK := len(mres.Levels)
	if len(cres.Levels) > maxK {
		maxK = len(cres.Levels)
	}
	lookup := func(levels []mafia.LevelStats, k int) (int, int) {
		for _, l := range levels {
			if l.K == k {
				return l.Ncdu, l.Ndu
			}
		}
		return 0, 0
	}
	for k := 2; k <= maxK; k++ {
		mc, md := lookup(mres.Levels, k)
		cc, cd := lookup(cres.Levels, k)
		t.AddRow(tabular.I(k), tabular.I(mc), tabular.I(md), tabular.I(cc), tabular.I(cd))
	}
	t2 := tabular.New("Serial execution time (§5.5)",
		"system", "time_s", "clusters")
	t2.AddRow("pMAFIA", tabular.F(mres.Seconds), tabular.I(len(mres.Clusters)))
	t2.AddRow("modified CLIQUE", tabular.F(cres.Seconds), tabular.I(len(cres.Clusters)))
	return []*tabular.Table{t, t2}, nil
}

func runFig5(o *Options) ([]*tabular.Table, error) {
	// 20-d data, 5 clusters in 5 different 5-d subspaces, 16 procs;
	// N sweeps 1.45 M → 11.8 M in the paper (scaled here).
	p := o.Procs[len(o.Procs)-1]
	t := tabular.New(
		fmt.Sprintf("Time vs database size, 20-d data, 5 clusters each in 5 dimensions, %d procs", p),
		"records", "time_s", "time_per_1k_records_s")
	for _, base := range []int{25000, 50000, 100000, 200000} {
		spec := datagen.Spec{
			Dims:    20,
			Records: o.scaled(base),
			Clusters: []datagen.Cluster{
				boxCluster(10, 18, 0, 1, 2, 3, 4),
				boxCluster(25, 33, 4, 5, 6, 7, 8),
				boxCluster(45, 53, 8, 9, 10, 11, 12),
				boxCluster(60, 68, 12, 13, 14, 15, 16),
				boxCluster(80, 88, 15, 16, 17, 18, 19),
			},
			Seed: o.Seed + 3,
		}
		m, _, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		res, err := mafia.RunParallel(shard(m, p), fullDomains(20), mafia.Config{}, sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		t.AddRow(tabular.I(m.NumRecords()), tabular.F(res.Seconds),
			tabular.F(res.Seconds/float64(m.NumRecords())*1000))
	}
	return []*tabular.Table{t}, nil
}

func runFig6(o *Options) ([]*tabular.Table, error) {
	// 3 clusters in 5-d subspaces over 9 distinct dims; d sweeps
	// 10 → 100 (250 k records in the paper).
	p := o.Procs[len(o.Procs)-1]
	records := o.scaled(20000)
	t := tabular.New(
		fmt.Sprintf("Time vs data dimensionality, %d records, 3 clusters each in 5 dimensions, %d procs", records, p),
		"dims", "time_s")
	for _, d := range []int{10, 20, 40, 60, 80, 100} {
		spec := datagen.Spec{
			Dims:    d,
			Records: records,
			Clusters: []datagen.Cluster{
				boxCluster(12, 20, 0, 1, 2, 3, 4),
				boxCluster(40, 48, 2, 3, 4, 5, 6),
				boxCluster(70, 78, 4, 5, 6, 7, 8),
			},
			Seed: o.Seed + 4,
		}
		m, _, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		res, err := mafia.RunParallel(shard(m, p), fullDomains(d), mafia.Config{}, sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		t.AddRow(tabular.I(d), tabular.F(res.Seconds))
	}
	return []*tabular.Table{t}, nil
}

func runFig7(o *Options) ([]*tabular.Table, error) {
	// 50-d data, 1 cluster whose dimensionality sweeps 3 → 8 (650 k
	// records and 3 → 10 in the paper; the loop is exponential in the
	// cluster dimensionality, which already shows clearly by 8).
	p := o.Procs[len(o.Procs)-1]
	records := o.scaled(30000)
	t := tabular.New(
		fmt.Sprintf("Time vs hidden cluster dimensionality, 50-d data, %d records, %d procs", records, p),
		"cluster_dims", "time_s", "total_cdus")
	for _, k := range []int{3, 4, 5, 6, 7, 8} {
		dims := make([]int, k)
		for i := range dims {
			dims[i] = i * 2 // spread over the 50 dims
		}
		spec := datagen.Spec{
			Dims:     50,
			Records:  records,
			Clusters: []datagen.Cluster{boxCluster(30, 40, dims...)},
			Seed:     o.Seed + 5,
		}
		m, _, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		res, err := mafia.RunParallel(shard(m, p), fullDomains(50), mafia.Config{}, sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		cdus := 0
		for _, l := range res.Levels {
			if l.K >= 2 { // level 1 is just the bin count
				cdus += l.Ncdu
			}
		}
		t.AddRow(tabular.I(k), tabular.F(res.Seconds), tabular.I(cdus))
	}
	return []*tabular.Table{t}, nil
}
