package experiments

import (
	"fmt"
	"strings"

	"pmafia/internal/grid"
	"pmafia/internal/mafia"
	"pmafia/internal/proclus"
	"pmafia/internal/realdata"
	"pmafia/internal/sp2"
	"pmafia/internal/tabular"
)

func runTable4(o *Options) ([]*tabular.Table, error) {
	m := realdata.DAX(o.Seed + 7)
	res, err := mafia.Run(m, mafia.Config{Adaptive: grid.AdaptiveParams{Alpha: 2}})
	if err != nil {
		return nil, err
	}
	byDim := map[int]int{}
	maxD := 0
	for _, c := range res.Clusters {
		byDim[len(c.Dims)]++
		if len(c.Dims) > maxD {
			maxD = len(c.Dims)
		}
	}
	t := tabular.New(
		fmt.Sprintf("Clusters discovered in the DAX-like data set (%d records, %d dims, alpha=2, %.2fs serial)",
			m.NumRecords(), m.Dims(), res.Seconds),
		"cluster_dimension", "clusters_discovered")
	for d := 2; d <= maxD; d++ {
		if byDim[d] > 0 {
			t.AddRow(tabular.I(d), tabular.I(byDim[d]))
		}
	}
	if len(t.Rows) == 0 {
		t.AddRow("-", "0")
	}
	return []*tabular.Table{t}, nil
}

func runIonosphere(o *Options) ([]*tabular.Table, error) {
	m := realdata.Ionosphere(o.Seed + 8)
	t := tabular.New(
		fmt.Sprintf("Ionosphere-like data (%d records, %d dims): clusters by dimensionality", m.NumRecords(), m.Dims()),
		"alpha", "clusters", "by_dimension")
	for _, alpha := range []float64{2, 3} {
		res, err := mafia.Run(m, mafia.Config{Adaptive: grid.AdaptiveParams{Alpha: alpha}})
		if err != nil {
			return nil, err
		}
		byDim := map[int]int{}
		maxD := 0
		for _, c := range res.Clusters {
			byDim[len(c.Dims)]++
			if len(c.Dims) > maxD {
				maxD = len(c.Dims)
			}
		}
		detail := ""
		for d := 1; d <= maxD; d++ {
			if byDim[d] > 0 {
				if detail != "" {
					detail += " "
				}
				detail += fmt.Sprintf("%dx%d-d", byDim[d], d)
			}
		}
		if detail == "" {
			detail = "-"
		}
		t.AddRow(tabular.F(alpha), tabular.I(len(res.Clusters)), detail)
	}
	// §5.9.2 also contrasts PROCLUS, which needs the cluster count k
	// and average dimensionality l as user inputs; the paper argues its
	// 31- and 33-dimensional ionosphere clusters were an artifact of a
	// user-chosen l. Sweeping l shows the reported dimensionality
	// simply tracks the input — the supervision pMAFIA removes.
	t2 := tabular.New("PROCLUS on the same data (k = 2; output dims track the user's l)",
		"avg_dims_l", "cluster_dims_reported", "outliers")
	for _, l := range []int{4, 16, 32} {
		pres, err := proclus.Run(m, proclus.Config{K: 2, AvgDims: l, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		dims := make([]string, len(pres.Clusters))
		for i, c := range pres.Clusters {
			dims[i] = tabular.I(len(c.Dims))
		}
		t2.AddRow(tabular.I(l), strings.Join(dims, ", "), tabular.I(len(pres.Outliers)))
	}
	return []*tabular.Table{t, t2}, nil
}

func runTable5(o *Options) ([]*tabular.Table, error) {
	records := o.scaled(250000)
	m := realdata.EachMovie(records, o.Seed+9)
	t := tabular.New(
		fmt.Sprintf("Parallel performance on EachMovie-like ratings (%d records, 4 dims)", records),
		"procs", "time_s", "speedup")
	var t1 float64
	for _, p := range o.Procs {
		res, err := mafia.RunParallel(shard(m, p), nil,
			mafia.Config{Adaptive: grid.AdaptiveParams{Alpha: 1.8}},
			sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		if p == o.Procs[0] {
			t1 = res.Seconds * float64(p)
		}
		t.AddRow(tabular.I(p), tabular.F(res.Seconds), tabular.F(t1/res.Seconds))
	}
	return []*tabular.Table{t}, nil
}
