package experiments

import (
	"fmt"

	"pmafia/internal/datagen"
	"pmafia/internal/gen"
	"pmafia/internal/grid"
	"pmafia/internal/mafia"
	"pmafia/internal/model"
	"pmafia/internal/quality"
	"pmafia/internal/sp2"
	"pmafia/internal/tabular"
)

// ablationSpec is a mid-size data set shared by the ablations: 12-d
// data with two clusters in 4-d subspaces.
func ablationSpec(o *Options) datagen.Spec {
	return datagen.Spec{
		Dims:    12,
		Records: o.scaled(30000),
		Clusters: []datagen.Cluster{
			boxCluster(18, 33, 0, 3, 6, 9),
			boxCluster(55, 70, 1, 4, 7, 10),
		},
		Seed: o.Seed + 10,
	}
}

// runAblationGrid isolates the adaptive-grid design choice: the same
// engine, join and data with adaptive vs uniform binning.
func runAblationGrid(o *Options) ([]*tabular.Table, error) {
	spec := ablationSpec(o)
	m, truth, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("Adaptive vs uniform grids, %d records, 12-d data", m.NumRecords()),
		"grid", "total_cdus", "time_s", "subspaces_exact", "mean_boundary_error")
	cfgs := []struct {
		name string
		cfg  mafia.Config
	}{
		{"adaptive (pMAFIA)", mafia.Config{}},
		{"uniform 5 bins", mafia.Config{Grid: mafia.UniformGrid, UniformBins: 5, UniformTau: 0.02}},
		{"uniform 10 bins", mafia.Config{Grid: mafia.UniformGrid, UniformBins: 10, UniformTau: 0.02}},
		{"uniform 20 bins", mafia.Config{Grid: mafia.UniformGrid, UniformBins: 20, UniformTau: 0.02}},
	}
	for _, c := range cfgs {
		res, err := mafia.Run(m, c.cfg)
		if err != nil {
			return nil, err
		}
		cdus := 0
		for _, l := range res.Levels {
			cdus += l.Ncdu
		}
		q := quality.Evaluate(res, truth)
		t.AddRow(c.name, tabular.I(cdus), tabular.F(res.Seconds),
			fmt.Sprintf("%v", q.AllSubspacesExact), tabular.F(q.MeanBoundaryError))
	}
	return []*tabular.Table{t}, nil
}

// runAblationCount compares the population-counting strategies.
func runAblationCount(o *Options) ([]*tabular.Table, error) {
	spec := ablationSpec(o)
	m, _, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("Population counting strategy, %d records (adaptive grid = few CDUs; uniform grid = many CDUs)", m.NumRecords()),
		"grid", "strategy", "time_s", "total_cdus")
	for _, gridKind := range []string{"adaptive", "uniform"} {
		for _, c := range []struct {
			name string
			s    mafia.CountStrategy
		}{
			{"subspace-grouped hash", mafia.CountGrouped},
			{"direct per-CDU scan", mafia.CountDirect},
		} {
			cfg := mafia.Config{Count: c.s}
			if gridKind == "uniform" {
				cfg.Grid = mafia.UniformGrid
				cfg.UniformBins = 10
				cfg.UniformTau = 0.01
			}
			res, err := mafia.Run(m, cfg)
			if err != nil {
				return nil, err
			}
			cdus := 0
			for _, l := range res.Levels {
				if l.K >= 2 {
					cdus += l.Ncdu
				}
			}
			t.AddRow(gridKind, c.name, tabular.F(res.Seconds), tabular.I(cdus))
		}
	}
	return []*tabular.Table{t}, nil
}

// runAblationJoin compares candidate generation rules on the same
// adaptive grid: the MAFIA any-(k-2)-share join finds candidates the
// prefix join misses, at the cost of more pair comparisons.
func runAblationJoin(o *Options) ([]*tabular.Table, error) {
	spec := ablationSpec(o)
	m, truth, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("Join rule on the adaptive grid, %d records", m.NumRecords()),
		"join", "total_raw_cdus", "total_cdus", "clusters", "subspaces_exact")
	for _, c := range []struct {
		name string
		join gen.Join
	}{
		{"any (k-2)-share (MAFIA)", gen.MergeMAFIA},
		{"prefix share (CLIQUE)", gen.MergeCLIQUE},
	} {
		res, err := mafia.Run(m, mafia.Config{Join: c.join})
		if err != nil {
			return nil, err
		}
		raw, cdus := 0, 0
		for _, l := range res.Levels {
			raw += l.NcduRaw
			cdus += l.Ncdu
		}
		q := quality.Evaluate(res, truth)
		t.AddRow(c.name, tabular.I(raw), tabular.I(cdus), tabular.I(len(res.Clusters)),
			fmt.Sprintf("%v", q.AllSubspacesExact))
	}
	return []*tabular.Table{t}, nil
}

// runAblationBeta sweeps the window-merge threshold β (§4.4 discusses
// its insensitivity inside 25-75%).
func runAblationBeta(o *Options) ([]*tabular.Table, error) {
	spec := ablationSpec(o)
	m, truth, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("Merge threshold beta sweep, %d records", m.NumRecords()),
		"beta_pct", "total_bins", "time_s", "subspaces_exact", "mean_boundary_error")
	for _, beta := range []float64{15, 25, 50, 75, 90} {
		res, err := mafia.Run(m, mafia.Config{Adaptive: grid.AdaptiveParams{BetaPercent: beta}})
		if err != nil {
			return nil, err
		}
		q := quality.Evaluate(res, truth)
		t.AddRow(tabular.F(beta), tabular.I(res.Grid.TotalBins()), tabular.F(res.Seconds),
			fmt.Sprintf("%v", q.AllSubspacesExact), tabular.F(q.MeanBoundaryError))
	}
	return []*tabular.Table{t}, nil
}

// runAblationLatency sweeps the modeled switch latency to show where
// communication would start to matter (§4.5's αSpk term).
func runAblationLatency(o *Options) ([]*tabular.Table, error) {
	spec := ablationSpec(o)
	m, _, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	p := o.Procs[len(o.Procs)-1]
	t := tabular.New(
		fmt.Sprintf("Communication latency sensitivity, %d records, %d procs", m.NumRecords(), p),
		"latency", "time_s", "comm_s", "comm_fraction")
	for _, lat := range []float64{29.3e-6, 1e-3, 10e-3, 29.3e-3} {
		res, err := mafia.RunParallel(shard(m, p), fullDomains(spec.Dims), mafia.Config{},
			sp2.Config{Procs: p, Mode: o.Mode, LatencySec: lat})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.4gms", lat*1000)
		t.AddRow(label, tabular.F(res.Seconds), tabular.F(res.Report.CommSeconds),
			tabular.F(res.Report.CommSeconds/res.Seconds))
	}
	return []*tabular.Table{t}, nil
}

// runModelFit validates the paper's §4.5 running-time analysis: a
// sweep over processor counts is fitted to the Amdahl form
// T(p) = serial + work/p; a high R² and a small serial fraction
// quantify the "heavily data parallel" claim behind Figure 3.
func runModelFit(o *Options) ([]*tabular.Table, error) {
	spec := datagen.Spec{
		Dims:    20,
		Records: o.scaled(60000),
		Clusters: []datagen.Cluster{
			boxCluster(15, 23, 0, 4, 8, 12, 16),
			boxCluster(60, 68, 1, 5, 9, 13, 17),
		},
		Seed: o.Seed + 11,
	}
	m, _, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	procs := []int{1, 2, 3, 4, 6, 8, 12, 16}
	times := make([]float64, len(procs))
	t := tabular.New(
		fmt.Sprintf("Running-time model fit, %d records, 20-d data", m.NumRecords()),
		"procs", "measured_s", "fitted_s")
	for i, p := range procs {
		// Best of three runs per point: scheduler noise on a shared
		// host only ever inflates a measurement.
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			res, err := mafia.RunParallel(shard(m, p), fullDomains(spec.Dims), mafia.Config{},
				sp2.Config{Procs: p, Mode: o.Mode})
			if err != nil {
				return nil, err
			}
			if rep == 0 || res.Seconds < best {
				best = res.Seconds
			}
		}
		times[i] = best
	}
	fit, err := model.FitAmdahl(procs, times)
	if err != nil {
		return nil, err
	}
	for i, p := range procs {
		t.AddRow(tabular.I(p), tabular.F(times[i]), tabular.F(fit.Predict(p)))
	}
	t2 := tabular.New("Amdahl decomposition (T(p) = serial + work/p)",
		"serial_s", "work_s", "serial_fraction", "max_speedup", "R2")
	t2.AddRow(tabular.F(fit.Serial), tabular.F(fit.Work),
		tabular.F(fit.SerialFraction()), tabular.F(fit.MaxSpeedup()), tabular.F(fit.R2))
	return []*tabular.Table{t, t2}, nil
}

// runAblationTau sweeps τ, the minimum item count before a
// task-parallel step is divided among ranks: τ=1 divides everything
// (communication per tiny step), a huge τ makes every rank redo all
// task work (the paper's guard against dividing trivial work).
func runAblationTau(o *Options) ([]*tabular.Table, error) {
	spec := ablationSpec(o)
	m, _, err := datagen.Generate(spec)
	if err != nil {
		return nil, err
	}
	p := o.Procs[len(o.Procs)-1]
	t := tabular.New(
		fmt.Sprintf("Task-parallel threshold tau sweep, %d records, %d procs", m.NumRecords(), p),
		"tau", "time_s", "comm_s", "collectives")
	for _, tau := range []int{1, 64, 1 << 30} {
		res, err := mafia.RunParallel(shard(m, p), fullDomains(spec.Dims), mafia.Config{Tau: tau},
			sp2.Config{Procs: p, Mode: o.Mode})
		if err != nil {
			return nil, err
		}
		label := tabular.I(tau)
		if tau == 1<<30 {
			label = "inf (all ranks do all task work)"
		}
		t.AddRow(label, tabular.F(res.Seconds), tabular.F(res.Report.CommSeconds),
			tabular.I(int(res.Report.Collectives)))
	}
	return []*tabular.Table{t}, nil
}

// runPhases validates §5.3's observation that "bulk of the time is
// taken in populating the candidate dense units": a serial run is
// instrumented per level and the population pass's share of the total
// is reported.
func runPhases(o *Options) ([]*tabular.Table, error) {
	spec, err := fig3Data(o)
	if err != nil {
		return nil, err
	}
	m, _, err := datagen.Generate(*spec)
	if err != nil {
		return nil, err
	}
	res, err := mafia.Run(m, mafia.Config{})
	if err != nil {
		return nil, err
	}
	t := tabular.New(
		fmt.Sprintf("Per-level time breakdown (serial), %d records, %d-d data", m.NumRecords(), spec.Dims),
		"level", "ncdu", "level_s", "populate_s", "populate_share")
	var total, pop float64
	for _, l := range res.Levels {
		total += l.Seconds
		pop += l.PopulateSeconds
		share := 0.0
		if l.Seconds > 0 {
			share = l.PopulateSeconds / l.Seconds
		}
		t.AddRow(tabular.I(l.K), tabular.I(l.Ncdu), tabular.F(l.Seconds), tabular.F(l.PopulateSeconds), tabular.F(share))
	}
	t2 := tabular.New("Totals", "levels_s", "populate_s", "populate_share_of_levels")
	share := 0.0
	if total > 0 {
		share = pop / total
	}
	t2.AddRow(tabular.F(total), tabular.F(pop), tabular.F(share))
	return []*tabular.Table{t, t2}, nil
}
