// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): parallel run times and speedups (Table 1,
// Figures 3-4), candidate/dense unit counts (Table 2), scalability with
// database size, data dimensionality and cluster dimensionality
// (Figures 5-7), clustering quality against CLIQUE (Table 3), and the
// real-data experiments (Table 4, §5.9.2, Table 5) on the synthetic
// stand-ins. Each experiment prints the same rows/series the paper
// reports; record counts are scaled down by default and multiplied by
// Options.Scale.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/plot"
	"pmafia/internal/sp2"
	"pmafia/internal/tabular"
)

// Options configures a harness run.
type Options struct {
	// Scale multiplies every record count (1 = the scaled-down
	// defaults; ~140 reproduces the paper's full sizes).
	Scale float64
	// Seed drives all data generation.
	Seed uint64
	// Procs are the machine sizes swept by the parallel experiments.
	Procs []int
	// Mode selects the sp2 machine mode (Sim by default: honest
	// per-rank virtual time on any host).
	Mode sp2.Mode
	// Out receives the rendered tables.
	Out io.Writer
	// CSV, when non-nil, receives CSV copies of every table.
	CSV io.Writer
	// JSON, when non-nil, receives one machine-readable document
	// describing every table of the run (see flushJSON), so the
	// performance trajectory can be diffed across commits.
	JSON io.Writer
	// SVGDir, when non-empty, receives an SVG line chart per figure
	// experiment (fig3, table1, fig5-7, table5).
	SVGDir string

	// collected accumulates per-experiment results for the JSON export.
	collected []jsonExperiment
}

// jsonTable mirrors tabular.Table with lowercase JSON keys.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// jsonExperiment is one experiment's contribution to the JSON export.
type jsonExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []jsonTable `json:"tables"`
}

// flushJSON writes the collected experiment tables as one indented
// JSON document and resets the collector.
func (o *Options) flushJSON() error {
	if o.JSON == nil {
		return nil
	}
	doc := struct {
		Schema      string           `json:"schema"`
		Scale       float64          `json:"scale"`
		Seed        uint64           `json:"seed"`
		Procs       []int            `json:"procs"`
		Mode        string           `json:"mode"`
		Experiments []jsonExperiment `json:"experiments"`
	}{
		Schema:      "pmafia.experiments/v1",
		Scale:       o.Scale,
		Seed:        o.Seed,
		Procs:       o.Procs,
		Mode:        "sim",
		Experiments: o.collected,
	}
	if o.Mode == sp2.Real {
		doc.Mode = "real"
	}
	o.collected = nil
	enc := json.NewEncoder(o.JSON)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func (o *Options) normalize() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 20000615 // ICPP 2000 vintage
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 2, 4, 8, 16}
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
}

// scaled returns n records scaled by the options.
func (o *Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the handle used by `cmd/experiments -run <id>`.
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(o *Options) ([]*tabular.Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Figure 3: parallel run times of pMAFIA (30-d data, 5 clusters in 6-d subspaces)", runFig3},
		{"table1", "Table 1 + Figure 4: pMAFIA vs CLIQUE execution times and speedup (15-d data, 1 cluster in 5-d)", runTable1Fig4},
		{"table2", "Table 2 + §5.5: CDUs and dense units per level, pMAFIA vs modified CLIQUE (10-d data, one 7-d cluster)", runTable2},
		{"fig5", "Figure 5: scalability with database size (20-d data, 5 clusters in 5-d subspaces, 16 procs)", runFig5},
		{"fig6", "Figure 6: scalability with data dimensionality (3 clusters in 5-d subspaces, 16 procs)", runFig6},
		{"fig7", "Figure 7: scalability with cluster dimensionality (50-d data, 16 procs)", runFig7},
		{"table3", "Table 3: quality of clustering, CLIQUE (fixed/variable bins) vs pMAFIA (10-d data, 2 clusters in 4-d)", runTable3},
		{"table4", "Table 4: clusters discovered in the DAX-like data set (alpha = 2)", runTable4},
		{"ionosphere", "§5.9.2: ionosphere-like data, clusters at alpha = 2 vs alpha = 3", runIonosphere},
		{"table5", "Table 5: parallel performance on the EachMovie-like ratings data", runTable5},
		{"ablation-grid", "Ablation: adaptive vs uniform grids at fixed data (candidates, time, quality)", runAblationGrid},
		{"ablation-count", "Ablation: subspace-grouped vs direct population counting", runAblationCount},
		{"ablation-join", "Ablation: MAFIA any-share join vs CLIQUE prefix join on the same adaptive grid", runAblationJoin},
		{"ablation-beta", "Ablation: window-merge threshold beta vs bins, time and quality", runAblationBeta},
		{"ablation-latency", "Ablation: communication latency sensitivity of the 16-proc run", runAblationLatency},
		{"ablation-tau", "Ablation: task-parallel threshold tau (divide vs replicate task work)", runAblationTau},
		{"model-fit", "Analysis (§4.5): Amdahl fit of the measured processor sweep", runModelFit},
		{"phases", "§5.3: per-level time breakdown — population passes dominate", runPhases},
		{"critical-path", "Analysis: critical-path attribution of the simulated makespan (compute by phase, comm by kind)", runCriticalPath},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, rendering tables as they finish.
func RunAll(o *Options) error {
	o.normalize()
	for _, e := range All() {
		if err := runOne(e, o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return o.flushJSON()
}

// RunOne executes a single experiment by id.
func RunOne(id string, o *Options) error {
	o.normalize()
	e, ok := ByID(id)
	if !ok {
		ids := make([]string, 0)
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
		sort.Strings(ids)
		return fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
	}
	if err := runOne(e, o); err != nil {
		return err
	}
	return o.flushJSON()
}

func runOne(e Experiment, o *Options) error {
	fmt.Fprintf(o.Out, "== %s ==\n", e.Title)
	tables, err := e.Run(o)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(o.Out); err != nil {
			return err
		}
		fmt.Fprintln(o.Out)
		if o.CSV != nil {
			if err := t.RenderCSV(o.CSV); err != nil {
				return err
			}
		}
	}
	if o.SVGDir != "" {
		if err := writeSVG(o.SVGDir, e.ID, tables); err != nil {
			return err
		}
	}
	if o.JSON != nil {
		je := jsonExperiment{ID: e.ID, Title: e.Title}
		for _, t := range tables {
			je.Tables = append(je.Tables, jsonTable{Title: t.Title, Headers: t.Headers, Rows: t.Rows})
		}
		o.collected = append(o.collected, je)
	}
	return nil
}

// shard splits an in-memory matrix into p contiguous shards, the block
// distribution a staged shared file would produce.
func shard(m *dataset.Matrix, p int) []dataset.Source {
	out := make([]dataset.Source, p)
	n := m.NumRecords()
	for r := 0; r < p; r++ {
		lo, hi := diskio.ShareBounds(n, r, p)
		out[r] = m.Slice(lo, hi)
	}
	return out
}

// boxCluster builds a single-box cluster with the same extent in every
// listed dimension.
func boxCluster(lo, hi float64, dims ...int) datagen.Cluster {
	ext := make([]dataset.Range, len(dims))
	for i := range ext {
		ext[i] = dataset.Range{Lo: lo, Hi: hi}
	}
	return datagen.UniformBox(dims, ext, 0)
}

// fullDomains returns [0,100) domains for d dims — the generator's
// attribute ranges — so runs skip the domain-discovery pass exactly
// like the paper's setup, where attribute ranges are known.
func fullDomains(d int) []dataset.Range {
	doms := make([]dataset.Range, d)
	for i := range doms {
		doms[i] = dataset.Range{Lo: 0, Hi: 100}
	}
	return doms
}

// figureAxes marks which experiments produce figure-style series and
// how to scale their axes (log-x for processor sweeps).
var figureAxes = map[string]struct{ logX, logY bool }{
	"fig3":   {true, true},
	"table1": {true, true},
	"fig5":   {false, false},
	"fig6":   {false, false},
	"fig7":   {false, false},
	"table5": {true, true},
}

// tableChart converts a harness table into a line chart: the first
// column supplies x, every other fully-numeric column becomes a
// series.
func tableChart(t *tabular.Table, logX, logY bool) (*plot.Chart, error) {
	if len(t.Rows) < 2 {
		return nil, fmt.Errorf("experiments: table %q too small to plot", t.Title)
	}
	parse := func(col int) ([]float64, bool) {
		vals := make([]float64, len(t.Rows))
		for i, row := range t.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				return nil, false
			}
			vals[i] = v
		}
		return vals, true
	}
	xs, ok := parse(0)
	if !ok {
		return nil, fmt.Errorf("experiments: table %q has a non-numeric x column", t.Title)
	}
	c := &plot.Chart{Title: t.Title, XLabel: t.Headers[0], LogX: logX, LogY: logY}
	for col := 1; col < len(t.Headers); col++ {
		ys, ok := parse(col)
		if !ok {
			continue
		}
		if logY {
			positive := true
			for _, v := range ys {
				if v <= 0 {
					positive = false
				}
			}
			if !positive {
				continue
			}
		}
		c.Series = append(c.Series, plot.Series{Name: t.Headers[col], X: xs, Y: ys})
	}
	if len(c.Series) == 0 {
		return nil, fmt.Errorf("experiments: table %q has no numeric series", t.Title)
	}
	if len(c.Series) == 1 {
		c.YLabel = c.Series[0].Name
	}
	return c, nil
}

// writeSVG renders the experiment's first table as <id>.svg in dir.
func writeSVG(dir, id string, tables []*tabular.Table) error {
	axes, ok := figureAxes[id]
	if !ok || len(tables) == 0 {
		return nil
	}
	chart, err := tableChart(tables[0], axes.logX, axes.logY)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return chart.SVG(f, 640, 420)
}
