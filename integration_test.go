package pmafia

// End-to-end scenarios exercising the public API across packages:
// dimension permutation, non-rectangular clusters, custom attribute
// ranges, determinism, labeling, and a full disk-staged 16-rank run.

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestIntegrationPermutedDims(t *testing.T) {
	// The generator permutes dimension labels; detection must follow.
	data, truth, err := Generate(Spec{
		Dims:    10,
		Records: 8000,
		Clusters: []ClusterSpec{
			UniformBox([]int{0, 1, 2},
				[]Range{{Lo: 30, Hi: 45}, {Lo: 30, Hi: 45}, {Lo: 30, Hi: 45}}, 0),
		},
		Seed:        61,
		PermuteDims: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Clusters[0].Dims
	found := false
	for _, c := range res.Clusters {
		if len(c.Dims) != len(want) {
			continue
		}
		ok := true
		for i := range want {
			if int(c.Dims[i]) != want[i] {
				ok = false
			}
		}
		if ok {
			found = true
		}
	}
	if !found {
		t.Errorf("permuted cluster dims %v not found; got %v", want, res.Clusters)
	}
}

func TestIntegrationLShapedCluster(t *testing.T) {
	// A union of two overlapping boxes forms an L; the DNF cover should
	// need more than one conjunction and the region must be recovered.
	data, _, err := Generate(Spec{
		Dims:    4,
		Records: 20000,
		Clusters: []ClusterSpec{{
			Dims: []int{0, 1},
			Boxes: []BoxSpec{
				{{Lo: 10, Hi: 34}, {Lo: 10, Hi: 20}}, // horizontal bar
				{{Lo: 10, Hi: 20}, {Lo: 10, Hi: 34}}, // vertical bar
			},
		}},
		Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var lcluster *Cluster
	for i := range res.Clusters {
		if len(res.Clusters[i].Dims) == 2 && res.Clusters[i].Dims[0] == 0 && res.Clusters[i].Dims[1] == 1 {
			lcluster = &res.Clusters[i]
		}
	}
	if lcluster == nil {
		t.Fatalf("L-shaped cluster not found: %v", res.Clusters)
	}
	dnf := lcluster.DNF(res.Grid)
	if !strings.Contains(dnf, "∨") {
		// The adaptive grid may legitimately cover an L with one box if
		// bins blur the notch, but with extents this large it must not.
		t.Errorf("L-shaped cluster covered by a single box: %s", dnf)
	}
	// The corner outside the L must not be inside the cluster.
	if lcluster.Contains([]float64{30, 30, 50, 50}, res.Grid) {
		t.Error("region outside the L reported as inside")
	}
	if !lcluster.Contains([]float64{30, 15, 50, 50}, res.Grid) {
		t.Error("horizontal bar not inside the cluster")
	}
	if !lcluster.Contains([]float64{15, 30, 50, 50}, res.Grid) {
		t.Error("vertical bar not inside the cluster")
	}
}

func TestIntegrationCustomAttributeRanges(t *testing.T) {
	attrs := []Range{
		{Lo: -500, Hi: 500},
		{Lo: 0, Hi: 1},
		{Lo: 1000, Hi: 9000},
	}
	data, _, err := Generate(Spec{
		Dims:       3,
		Records:    8000,
		AttrRanges: attrs,
		Clusters: []ClusterSpec{
			UniformBox([]int{0, 2},
				[]Range{{Lo: -100, Hi: 50}, {Lo: 2000, Hi: 3200}}, 0),
		},
		Seed: 63,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Clusters {
		if len(c.Dims) == 2 && c.Dims[0] == 0 && c.Dims[1] == 2 {
			found = true
			b := c.Bounds(res.Grid)
			if !b[0].Overlaps(Range{Lo: -100, Hi: 50}) || !b[1].Overlaps(Range{Lo: 2000, Hi: 3200}) {
				t.Errorf("bounds %v do not overlap the embedded extents", b)
			}
		}
	}
	if !found {
		t.Errorf("cluster not found in custom-range data: %v", res.Clusters)
	}
}

func TestIntegrationDeterminism(t *testing.T) {
	gen := func() *Result {
		data, _, err := Generate(sampleSpec(64))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(data, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := gen(), gen()
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		if a.Clusters[i].DNF(a.Grid) != b.Clusters[i].DNF(b.Grid) {
			t.Errorf("cluster %d DNF differs between identical runs", i)
		}
	}
	for i := range a.Levels {
		la, lb := a.Levels[i], b.Levels[i]
		if la.K != lb.K || la.NcduRaw != lb.NcduRaw || la.Ncdu != lb.Ncdu || la.Ndu != lb.Ndu {
			t.Errorf("level %d stats differ between identical runs", i)
		}
	}
}

func TestIntegrationAssignPublicAPI(t *testing.T) {
	data, _, err := Generate(sampleSpec(65))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := res.Assign(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	assigned := 0
	for _, l := range labels {
		if l >= 0 {
			assigned++
		}
	}
	// The embedded cluster holds ~91% of records (6000 of 6600).
	if assigned < data.NumRecords()/2 {
		t.Errorf("only %d/%d records assigned", assigned, data.NumRecords())
	}
}

func TestIntegrationSixteenRankDiskRun(t *testing.T) {
	data, _, err := Generate(Spec{
		Dims:    12,
		Records: 16000,
		Clusters: []ClusterSpec{
			UniformBox([]int{2, 5, 8},
				[]Range{{Lo: 40, Hi: 55}, {Lo: 40, Hi: 55}, {Lo: 40, Hi: 55}}, 0),
		},
		Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	shared := filepath.Join(dir, "shared.pmaf")
	if err := WriteFile(shared, data); err != nil {
		t.Fatal(err)
	}
	sf, err := OpenFile(shared)
	if err != nil {
		t.Fatal(err)
	}
	const p = 16
	shards := make([]Source, p)
	for r := 0; r < p; r++ {
		local, err := Stage(sf, filepath.Join(dir, "nodes"), r, p)
		if err != nil {
			t.Fatal(err)
		}
		shards[r] = local
	}
	res, err := RunParallel(shards, sf.Domains(), Config{ChunkRecords: 256}, MachineConfig{Procs: p})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != len(serial.Clusters) {
		t.Errorf("16-rank disk run found %d clusters, serial %d", len(res.Clusters), len(serial.Clusters))
	}
	if res.Report.Collectives == 0 || res.Report.BytesMoved == 0 {
		t.Errorf("no communication recorded: %+v", res.Report)
	}
}

func TestIntegrationHighDimensionalData(t *testing.T) {
	// 200 dimensions is above nothing structural — the byte encoding
	// allows up to 255.
	data, _, err := Generate(Spec{
		Dims:    200,
		Records: 4000,
		Clusters: []ClusterSpec{
			UniformBox([]int{10, 100, 190},
				[]Range{{Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}, {Lo: 20, Hi: 32}}, 0),
		},
		Seed: 67,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Clusters {
		if len(c.Dims) == 3 && c.Dims[0] == 10 && c.Dims[1] == 100 && c.Dims[2] == 190 {
			found = true
		}
	}
	if !found {
		t.Errorf("cluster in 200-d data not found: %d clusters", len(res.Clusters))
	}
}

func TestIntegrationDimensionLimit(t *testing.T) {
	data := NewMatrixHelper(t, 10, 256)
	if _, err := Run(data, Config{}); err == nil {
		t.Error("256 dims must be rejected (byte encoding)")
	}
}

// NewMatrixHelper builds a small uniform matrix for limit tests.
func NewMatrixHelper(t *testing.T, n, d int) *Matrix {
	t.Helper()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = float64((i*31 + j*17) % 100)
		}
	}
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
