// Package pmafia is a Go implementation of pMAFIA — the scalable
// parallel subspace clustering algorithm with adaptive grids of Nagesh,
// Goil and Choudhary (ICPP 2000) — together with the CLIQUE baseline it
// is evaluated against, a synthetic data generator matching the
// paper's, out-of-core record files, and a simulated distributed-memory
// machine for reproducing the paper's parallel results on any host.
//
// Quick start:
//
//	data, truth, _ := pmafia.Generate(pmafia.Spec{
//		Dims:    8,
//		Records: 50000,
//		Clusters: []pmafia.ClusterSpec{
//			pmafia.UniformBox([]int{1, 4, 6}, []pmafia.Range{{20, 35}, {50, 65}, {5, 20}}, 0),
//		},
//		Seed: 1,
//	})
//	res, _ := pmafia.Run(data, pmafia.Config{})
//	for _, c := range res.Clusters {
//		fmt.Println(c.DNF(res.Grid))
//	}
//	_ = truth
//
// pMAFIA is fully unsupervised: the only knobs are the density factor
// α (Alpha, > 1.5) and the window-merge percentage β (BetaPercent,
// 25-75); the defaults follow the paper.
package pmafia

import (
	"pmafia/internal/clique"
	"pmafia/internal/cluster"
	"pmafia/internal/datagen"
	"pmafia/internal/dataset"
	"pmafia/internal/diskio"
	"pmafia/internal/grid"
	"pmafia/internal/mafia"
	"pmafia/internal/obs"
	"pmafia/internal/realdata"
	"pmafia/internal/sp2"
)

// Core data types, re-exported so downstream users can name them.
type (
	// Range is a half-open interval [Lo, Hi).
	Range = dataset.Range
	// Matrix is an in-memory data set (rows of float64 records).
	Matrix = dataset.Matrix
	// Source is anything the engines can scan in chunks: a Matrix or an
	// on-disk record File.
	Source = dataset.Source
	// Result is a clustering outcome: grid, per-level statistics,
	// clusters and the parallel machine report.
	Result = mafia.Result
	// LevelStats reports candidate and dense unit counts per level.
	LevelStats = mafia.LevelStats
	// Cluster is a reported cluster: a connected set of dense units in
	// one subspace with a minimal DNF cover.
	Cluster = cluster.Cluster
	// Grid is the computed per-dimension binning.
	Grid = grid.Grid
	// MachineConfig configures the message-passing machine (rank
	// count, Sim/Real mode, latency and bandwidth of the cost model).
	MachineConfig = sp2.Config
	// MachineReport is the timing/communication report of a run.
	MachineReport = sp2.Report
	// Spec describes a synthetic data set (the paper's §5.1 generator).
	Spec = datagen.Spec
	// ClusterSpec is one embedded cluster of a Spec.
	ClusterSpec = datagen.Cluster
	// BoxSpec is one hyper-rectangle of a ClusterSpec (a range per
	// subspace dimension).
	BoxSpec = datagen.Box
	// Truth is a generated data set's ground truth.
	Truth = datagen.Truth
	// File is an on-disk record file (implements Source).
	File = diskio.File
	// Recorder is the observability sink of a run: per-rank phase spans
	// (virtual time in Sim mode, wall time in Real mode) and engine
	// counters, exportable as a Chrome trace, metrics JSON, or a
	// per-phase table. Attach one via Config.Recorder.
	Recorder = obs.Recorder
	// CollectiveStats is one collective kind's count/bytes/seconds in a
	// MachineReport's ByKind breakdown.
	CollectiveStats = sp2.CollectiveStats
)

// NewRecorder creates an empty observability recorder.
func NewRecorder() *Recorder { return obs.New() }

// Machine execution modes.
const (
	// Sim serializes ranks and reports honest virtual time (default).
	Sim = sp2.Sim
	// Real runs ranks concurrently and reports wall-clock time.
	Real = sp2.Real
)

// Config holds the user-facing pMAFIA parameters. The zero value is
// the paper's recommended configuration (α = 1.5, β = 50%, fully
// unsupervised).
type Config struct {
	// Alpha is the density deviation factor α; a cell is dense when its
	// population exceeds α times the equidistribution expectation of
	// every bin forming it. Values above 1.5 work well (paper §4.4).
	Alpha float64
	// BetaPercent is the adaptive-grid merge threshold β as a
	// percentage; 25-75 works well (paper §4.4).
	BetaPercent float64
	// FineUnits is the number of fine histogram units per dimension
	// (default 1000).
	FineUnits int
	// WindowUnits is the fine units per window in Algorithm 1
	// (default 5).
	WindowUnits int
	// EquiSplit is the number of fixed partitions an equi-distributed
	// dimension is re-split into (default 5).
	EquiSplit int
	// ChunkRecords is B, the number of records per out-of-core read
	// (default 8192).
	ChunkRecords int
	// TaskThreshold is τ: minimum item count before a task-parallel
	// step is divided among processors (default 64).
	TaskThreshold int
	// Workers is the intra-rank worker-pool size for the histogram and
	// population passes (0 or 1: run inline). Each chunk's records are
	// sharded across this many goroutines with worker-private tallies;
	// results are bit-identical to the serial passes.
	Workers int
	// MaxLevels caps the subspace dimensionality explored (0 = all).
	MaxLevels int
	// Recorder, when non-nil, records per-rank phase spans and engine
	// counters for the run (see NewRecorder). nil disables observability
	// at zero cost.
	Recorder *Recorder
}

func (c Config) toInternal() mafia.Config {
	return mafia.Config{
		Adaptive: grid.AdaptiveParams{
			Alpha:       c.Alpha,
			BetaPercent: c.BetaPercent,
			WindowUnits: c.WindowUnits,
			EquiSplit:   c.EquiSplit,
		},
		FineUnits:    c.FineUnits,
		ChunkRecords: c.ChunkRecords,
		Tau:          c.TaskThreshold,
		Workers:      c.Workers,
		MaxLevels:    c.MaxLevels,
		Recorder:     c.Recorder,
	}
}

// Run clusters src with pMAFIA on a single processor.
func Run(src Source, cfg Config) (*Result, error) {
	return mafia.Run(src, cfg.toInternal())
}

// RunParallel clusters data distributed over one shard per rank of the
// machine. domains may be nil (a parallel pass discovers them). In Sim
// mode (the default) the run reports honest per-rank virtual time even
// on a single-core host; in Real mode ranks execute concurrently.
func RunParallel(shards []Source, domains []Range, cfg Config, machine MachineConfig) (*Result, error) {
	return mafia.RunParallel(shards, domains, cfg.toInternal(), machine)
}

// CLIQUEConfig holds the baseline's parameters (which, unlike pMAFIA's,
// must be supplied by the user: the bin count ξ and the global density
// threshold τ).
type CLIQUEConfig = clique.Config

// RunCLIQUE clusters src with the CLIQUE baseline on one processor.
func RunCLIQUE(src Source, cfg CLIQUEConfig) (*Result, error) {
	return clique.Run(src, cfg)
}

// RunCLIQUEParallel is the parallelized CLIQUE used by the paper's
// head-to-head comparisons.
func RunCLIQUEParallel(shards []Source, domains []Range, cfg CLIQUEConfig, machine MachineConfig) (*Result, error) {
	return clique.RunParallel(shards, domains, cfg, machine)
}

// Generate produces a synthetic data set and its ground truth with the
// paper's generator (inversive congruential randomness, per-dimension
// coverage guarantees, 10% noise, shuffled records).
func Generate(spec Spec) (*Matrix, *Truth, error) {
	return datagen.Generate(spec)
}

// UniformBox builds a single-box cluster specification.
func UniformBox(dims []int, extents []Range, points int) ClusterSpec {
	return datagen.UniformBox(dims, extents, points)
}

// FromRows builds an in-memory data set from rows.
func FromRows(rows [][]float64) (*Matrix, error) { return dataset.FromRows(rows) }

// Domains scans src once and returns each dimension's value range.
func Domains(src Source) ([]Range, error) { return dataset.Domains(src) }

// WriteFile stores src as an on-disk record file at path.
func WriteFile(path string, src Source) error { return diskio.WriteSource(path, src) }

// OpenFile opens an on-disk record file; the result implements Source
// and can be clustered out of core.
func OpenFile(path string) (*File, error) { return diskio.Open(path) }

// Stage copies rank's N/p share of a shared record file into localDir,
// simulating the paper's shared-disk → local-disk staging.
func Stage(shared *File, localDir string, rank, p int) (*File, error) {
	return diskio.Stage(shared, localDir, rank, p)
}

// ShardMatrix splits an in-memory data set into p contiguous shards
// for RunParallel.
func ShardMatrix(m *Matrix, p int) []Source {
	out := make([]Source, p)
	n := m.NumRecords()
	for r := 0; r < p; r++ {
		lo, hi := diskio.ShareBounds(n, r, p)
		out[r] = m.Slice(lo, hi)
	}
	return out
}

// SampleDAX returns the DAX-like financial sample data set (22
// dimensions, 2757 records; see the paper's §5.9.1).
func SampleDAX(seed uint64) *Matrix { return realdata.DAX(seed) }

// SampleIonosphere returns the ionosphere-like radar sample data set
// (34 dimensions, 351 records; §5.9.2).
func SampleIonosphere(seed uint64) *Matrix { return realdata.Ionosphere(seed) }

// SampleRatings returns an EachMovie-like ratings data set with the
// given number of records (§5.9.3).
func SampleRatings(records int, seed uint64) *Matrix { return realdata.EachMovie(records, seed) }
