package pmafia

// One benchmark per table and figure of the paper's evaluation
// section, each driving the corresponding experiment harness at a
// reduced scale (the `cmd/experiments` binary runs them at full
// default scale and prints the tables). Ablation benchmarks cover the
// design choices called out in DESIGN.md.

import (
	"io"
	"testing"

	"pmafia/internal/experiments"
	"pmafia/internal/sp2"
)

// benchOpts returns harness options sized for benchmarking.
func benchOpts(scale float64, procs ...int) *experiments.Options {
	if len(procs) == 0 {
		procs = []int{1, 2, 4, 8, 16}
	}
	return &experiments.Options{
		Scale: scale,
		Seed:  99,
		Procs: procs,
		Mode:  sp2.Sim,
		Out:   io.Discard,
	}
}

func benchExperiment(b *testing.B, id string, o *experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunOne(id, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Fig4 regenerates Table 1 and Figure 4: pMAFIA vs
// CLIQUE execution times across 1-16 processors.
func BenchmarkTable1Fig4(b *testing.B) { benchExperiment(b, "table1", benchOpts(0.1, 1, 4, 16)) }

// BenchmarkFig3 regenerates Figure 3: parallel run times of pMAFIA on
// the 30-d, 5-cluster data set.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3", benchOpts(0.1, 1, 4, 16)) }

// BenchmarkTable2 regenerates Table 2: CDU and dense-unit counts per
// level for pMAFIA vs the modified CLIQUE.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", benchOpts(0.1)) }

// BenchmarkFig5 regenerates Figure 5: scalability with database size.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5", benchOpts(0.05, 16)) }

// BenchmarkFig6 regenerates Figure 6: scalability with data
// dimensionality.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6", benchOpts(0.05, 16)) }

// BenchmarkFig7 regenerates Figure 7: scalability with hidden cluster
// dimensionality.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7", benchOpts(0.05, 16)) }

// BenchmarkTable3 regenerates Table 3: clustering quality of CLIQUE
// (fixed and variable bins) vs pMAFIA.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", benchOpts(0.1)) }

// BenchmarkTable4 regenerates Table 4: clusters discovered in the
// DAX-like data set.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4", benchOpts(1)) }

// BenchmarkIonosphere regenerates §5.9.2: the ionosphere-like data at
// alpha 2 and 3.
func BenchmarkIonosphere(b *testing.B) { benchExperiment(b, "ionosphere", benchOpts(1)) }

// BenchmarkTable5 regenerates Table 5: parallel performance on the
// EachMovie-like ratings data.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5", benchOpts(0.05, 1, 4, 16)) }

// BenchmarkAblationGrid compares adaptive vs uniform grids (the
// paper's central design choice).
func BenchmarkAblationGrid(b *testing.B) { benchExperiment(b, "ablation-grid", benchOpts(0.1)) }

// BenchmarkAblationCount compares the population-counting strategies.
func BenchmarkAblationCount(b *testing.B) { benchExperiment(b, "ablation-count", benchOpts(0.1)) }

// BenchmarkAblationJoin compares the MAFIA join against the CLIQUE
// prefix join on identical grids.
func BenchmarkAblationJoin(b *testing.B) { benchExperiment(b, "ablation-join", benchOpts(0.1)) }

// BenchmarkAblationBeta sweeps the adaptive-grid merge threshold.
func BenchmarkAblationBeta(b *testing.B) { benchExperiment(b, "ablation-beta", benchOpts(0.1)) }

// BenchmarkAblationLatency sweeps the modeled communication latency.
func BenchmarkAblationLatency(b *testing.B) {
	benchExperiment(b, "ablation-latency", benchOpts(0.1, 16))
}

// BenchmarkSerialRun measures a bare serial clustering call through
// the public API (no harness overhead).
func BenchmarkSerialRun(b *testing.B) {
	data, _, err := Generate(sampleSpec(77))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(data, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelRun measures a 16-rank simulated parallel run.
func BenchmarkParallelRun(b *testing.B) {
	data, _, err := Generate(sampleSpec(78))
	if err != nil {
		b.Fatal(err)
	}
	shards := ShardMatrix(data, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunParallel(shards, nil, Config{}, MachineConfig{Procs: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelFit regenerates the §4.5 analysis validation (Amdahl
// fit of a processor sweep).
func BenchmarkModelFit(b *testing.B) { benchExperiment(b, "model-fit", benchOpts(0.1)) }

// BenchmarkAblationTau sweeps the task-parallel threshold τ.
func BenchmarkAblationTau(b *testing.B) { benchExperiment(b, "ablation-tau", benchOpts(0.1, 16)) }

// BenchmarkPhases regenerates the §5.3 per-level time breakdown.
func BenchmarkPhases(b *testing.B) { benchExperiment(b, "phases", benchOpts(0.1, 1)) }
