// Out-of-core scenario: cluster a data set from disk without ever
// loading it whole. The data is written as a shared .pmaf record file,
// staged onto per-processor "local disks" (directories) exactly like
// the paper's shared-disk → local-disk setup on the IBM SP2, and
// clustered in parallel reading B records at a time.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pmafia"
)

func main() {
	dir, err := os.MkdirTemp("", "pmafia-outofcore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate and persist the shared data set: 120k records, 12 dims,
	// two embedded 4-dimensional clusters.
	data, _, err := pmafia.Generate(pmafia.Spec{
		Dims:    12,
		Records: 120000,
		Clusters: []pmafia.ClusterSpec{
			pmafia.UniformBox([]int{0, 3, 6, 9},
				[]pmafia.Range{{Lo: 18, Hi: 33}, {Lo: 18, Hi: 33}, {Lo: 18, Hi: 33}, {Lo: 18, Hi: 33}}, 0),
			pmafia.UniformBox([]int{1, 4, 7, 10},
				[]pmafia.Range{{Lo: 55, Hi: 70}, {Lo: 55, Hi: 70}, {Lo: 55, Hi: 70}, {Lo: 55, Hi: 70}}, 0),
		},
		Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	sharedPath := filepath.Join(dir, "shared.pmaf")
	if err := pmafia.WriteFile(sharedPath, data); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(sharedPath)
	fmt.Printf("shared file: %s (%.1f MB, %d records)\n", sharedPath, float64(fi.Size())/1e6, data.NumRecords())

	shared, err := pmafia.OpenFile(sharedPath)
	if err != nil {
		log.Fatal(err)
	}

	// Stage each rank's N/p share onto its local disk.
	const p = 4
	shards := make([]pmafia.Source, p)
	locals := make([]*pmafia.File, p)
	for r := 0; r < p; r++ {
		local, err := pmafia.Stage(shared, filepath.Join(dir, fmt.Sprintf("node%d", r)), r, p)
		if err != nil {
			log.Fatal(err)
		}
		shards[r] = local
		locals[r] = local
	}
	fmt.Printf("staged %d local shards\n", p)

	// Cluster out of core: B = 2048 records per read, so each rank
	// holds only ~2048x12 float64s of data in memory at a time.
	res, err := pmafia.RunParallel(shards, shared.Domains(),
		pmafia.Config{ChunkRecords: 2048},
		pmafia.MachineConfig{Procs: p})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nclustered %d records on %d ranks in %.3fs (simulated), comm %.4fs\n",
		res.N, p, res.Seconds, res.Report.CommSeconds)
	var bytesRead int64
	for _, l := range locals {
		bytesRead += l.StatsSnapshot().BytesRead
	}
	fmt.Printf("local-disk bytes read across the %d passes: %.1f MB\n",
		len(res.Levels), float64(bytesRead)/1e6)

	fmt.Printf("\n%d cluster(s):\n", len(res.Clusters))
	for _, c := range res.Clusters {
		fmt.Printf("  dims %v: %s\n", c.Dims, c.DNF(res.Grid))
	}
}
