// Quickstart: generate a small synthetic data set with one embedded
// subspace cluster, run pMAFIA with its default (fully unsupervised)
// configuration, and print what it found.
package main

import (
	"fmt"
	"log"

	"pmafia"
)

func main() {
	// 50,000 records in 8 dimensions; one cluster lives in the
	// 3-dimensional subspace {1, 4, 6}. 10% noise is added and record
	// order is shuffled, as in the paper's generator.
	data, truth, err := pmafia.Generate(pmafia.Spec{
		Dims:    8,
		Records: 50000,
		Clusters: []pmafia.ClusterSpec{
			pmafia.UniformBox(
				[]int{1, 4, 6},
				[]pmafia.Range{{Lo: 20, Hi: 35}, {Lo: 50, Hi: 65}, {Lo: 5, Hi: 20}},
				0,
			),
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d records x %d dims (%d noise records)\n",
		data.NumRecords(), data.Dims(), truth.NoiseRecords)

	// No parameters needed: α defaults to 1.5 and β to 50%, the
	// paper's recommendations.
	res, err := pmafia.Run(data, pmafia.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustering took %.3fs; per-level candidates/dense units:\n", res.Seconds)
	for _, l := range res.Levels {
		fmt.Printf("  level %d: %4d CDUs -> %4d dense\n", l.K, l.Ncdu, l.Ndu)
	}

	fmt.Printf("\n%d cluster(s):\n", len(res.Clusters))
	for _, c := range res.Clusters {
		fmt.Printf("  dims %v: %s\n", c.Dims, c.DNF(res.Grid))
	}
	fmt.Println("\nground truth was dims", truth.Clusters[0].Dims,
		"extents", truth.Clusters[0].Boxes[0])
}
