// Movie ratings scenario (paper §5.9.3): parallel clustering of an
// EachMovie-like ratings stream — records of (user-id, movie-id,
// score, weight). pMAFIA discovers which user communities rate which
// movie blocks as 2-dimensional clusters in the (user, movie) plane,
// and the run is repeated on 1..16 ranks of the simulated machine to
// show the Table 5 speedup curve.
package main

import (
	"fmt"
	"log"

	"pmafia"
)

func main() {
	const records = 200000
	data := pmafia.SampleRatings(records, 11)
	fmt.Printf("ratings data: %d records x %d dims (user, movie, score, weight)\n",
		data.NumRecords(), data.Dims())

	cfg := pmafia.Config{Alpha: 1.8}

	fmt.Println("\nprocs  time_s  speedup   (simulated SP2, Table 5 shape)")
	var t1 float64
	var last *pmafia.Result
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := pmafia.RunParallel(pmafia.ShardMatrix(data, p), nil, cfg,
			pmafia.MachineConfig{Procs: p})
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			t1 = res.Seconds
		}
		fmt.Printf("%5d  %6.3f  %6.2fx\n", p, res.Seconds, t1/res.Seconds)
		last = res
	}

	fmt.Printf("\n%d clusters of dimension 2 discovered:\n", len(last.Clusters))
	for i, c := range last.Clusters {
		b := c.Bounds(last.Grid)
		fmt.Printf("  #%d users %.0f-%.0f rate movies %.0f-%.0f\n",
			i+1, b[0].Lo, b[0].Hi, b[1].Lo, b[1].Hi)
	}
}
