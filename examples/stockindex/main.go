// Stock index scenario (paper §5.9.1): unsupervised subspace
// clustering of a DAX-like one-day-ahead prediction data set — 22
// financial indicator series over 2757 trading days. Market regimes
// concentrate subsets of the indicators, and pMAFIA discovers, with no
// user input beyond α, in which low-dimensional indicator subspaces
// the market clusters.
package main

import (
	"fmt"
	"log"
	"sort"

	"pmafia"
)

func main() {
	data := pmafia.SampleDAX(7)
	fmt.Printf("DAX-like data: %d trading days x %d indicators\n", data.NumRecords(), data.Dims())

	// The paper uses α = 2 for this data set.
	res, err := pmafia.Run(data, pmafia.Config{Alpha: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Table-4-style summary: clusters per dimensionality.
	byDim := map[int][]pmafia.Cluster{}
	for _, c := range res.Clusters {
		byDim[len(c.Dims)] = append(byDim[len(c.Dims)], c)
	}
	dims := make([]int, 0, len(byDim))
	for d := range byDim {
		dims = append(dims, d)
	}
	sort.Ints(dims)

	fmt.Printf("\nclusters discovered in %.2fs:\n", res.Seconds)
	fmt.Println("cluster dimension | number of clusters")
	for _, d := range dims {
		fmt.Printf("        %2d        | %d\n", d, len(byDim[d]))
	}

	// Show the highest-dimensional market regimes in detail.
	top := dims[len(dims)-1]
	fmt.Printf("\n%d-dimensional regimes:\n", top)
	for _, c := range byDim[top] {
		fmt.Printf("  indicators %v\n", c.Dims)
		for i, b := range c.Bounds(res.Grid) {
			fmt.Printf("    indicator %d trades in %v\n", c.Dims[i], b)
		}
	}
}
